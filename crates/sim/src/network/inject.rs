//! Message injection: packet creation and the per-node injection
//! engine feeding the local ports.

#[allow(clippy::wildcard_imports)]
use super::*;

impl Network {

    /// Whether the message-creation window is currently open.
    pub(super) fn in_window(&self) -> bool {
        self.cycle >= self.config.warmup_cycles
            && self.cycle < self.config.warmup_cycles + self.config.measure_cycles
    }

    pub(super) fn new_packet(&mut self, p: PacketInfo) -> u32 {
        self.packets.push(p);
        let id = (self.packets.len() - 1) as u32;
        if self.telemetry.is_some() {
            self.tel_packet_created(id);
        }
        id
    }

    /// Resets the watchdog baselines when the network transitions from
    /// idle to busy, so a long quiet gap before a lone message is not
    /// mistaken for a stall.
    fn mark_busy(&mut self, now: u64) {
        if self.measured_outstanding == 0 {
            self.last_progress = now;
            self.last_completion = now;
        }
    }

    pub(super) fn flits_for(&self, bytes: u32) -> u32 {
        self.config.link_width.flits_for(bytes)
    }

    /// Creates the packets for one injected message.
    ///
    /// # Panics
    ///
    /// Panics on a unicast message whose source equals its destination, or
    /// an empty multicast set. Prefer [`Network::try_inject_message`]
    /// where a structured error is wanted.
    pub fn inject_message(&mut self, spec: MessageSpec) {
        self.try_inject_message(spec).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Creates the packets for one injected message, rejecting malformed
    /// messages instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SelfUnicast`] for a unicast whose source equals
    /// its destination and [`SimError::EmptyMulticast`] for a multicast
    /// with no destinations.
    pub fn try_inject_message(&mut self, spec: MessageSpec) -> Result<(), SimError> {
        match spec.dest {
            Destination::Unicast(dst) if dst == spec.src => {
                return Err(SimError::SelfUnicast { node: spec.src });
            }
            Destination::Multicast(set) if set.is_empty() => {
                return Err(SimError::EmptyMulticast);
            }
            _ => {}
        }
        let now = self.cycle;
        let measured = self.in_window();
        self.tel_injected();
        if measured {
            self.stats.injected_messages += 1;
            let dist = match spec.dest {
                Destination::Unicast(d) => self.fabric.base_route_len(spec.src, d) as usize,
                Destination::Multicast(set) => {
                    if set.is_empty() {
                        0
                    } else {
                        let sum: u32 =
                            set.iter().map(|d| self.fabric.base_route_len(spec.src, d)).sum();
                        (sum as f64 / set.len() as f64).round() as usize
                    }
                }
            };
            let idx = dist.min(self.stats.distance_histogram.len() - 1);
            self.stats.distance_histogram[idx] += 1;
        }
        if !self.stats.pair_counts.is_empty() {
            let n = self.dims.nodes();
            match spec.dest {
                Destination::Unicast(dst) => {
                    self.stats.pair_counts[spec.src * n + dst] += 1;
                }
                Destination::Multicast(set) => {
                    for dst in set.iter() {
                        self.stats.pair_counts[spec.src * n + dst] += 1;
                    }
                }
            }
        }
        match spec.dest {
            Destination::Unicast(dst) => {
                let bytes = spec.bytes();
                let flits = self.flits_for(bytes);
                let pkt = self.new_packet(PacketInfo::new(
                    PacketDest::Unicast(dst),
                    spec.src as u32,
                    flits,
                    bytes,
                    now,
                    measured,
                    None,
                    false,
                ));
                if measured {
                    self.mark_busy(now);
                    self.measured_outstanding += 1;
                }
                self.pending_inj.push((spec.src, pkt, now));
            }
            Destination::Multicast(set) => {
                self.inject_multicast(spec.src, set, spec.bytes(), measured);
            }
        }
        Ok(())
    }

    pub(super) fn inject_multicast(&mut self, src: NodeId, set: DestSet, bytes: u32, measured: bool) {
        let now = self.cycle;
        let original_len = set.len();
        // A destination equal to the source is delivered immediately; the
        // parent's destination set only tracks remote destinations.
        let mut set = set;
        let self_dest = set.contains(src);
        if self_dest {
            set.remove(src);
        }
        self.parents.push(ParentInfo {
            src: src as u32,
            created: now,
            measured,
            remaining: original_len,
            dests: set,
            bytes,
        });
        let parent = (self.parents.len() - 1) as u32;
        if measured {
            self.mark_busy(now);
            self.measured_outstanding += 1;
        }
        if self_dest {
            self.complete_parent_part(parent, 1, now);
            if measured {
                self.stats.per_dest[src] += 1;
            }
            if set.is_empty() {
                return;
            }
        }
        let use_rf = matches!(self.multicast, MulticastMode::Rf)
            && self
                .mc
                .as_ref()
                .is_some_and(|mc| mc.cluster_of[src].is_some());
        if use_rf {
            let mc = self.mc.as_ref().expect("checked above");
            let cluster = mc.cluster_of[src].expect("checked above");
            let tx = mc.transmitters[cluster];
            if src == tx {
                self.mc_enqueues.push((cluster, parent));
            } else {
                let flits = self.flits_for(bytes);
                let pkt = self.new_packet(PacketInfo::new(
                    PacketDest::Unicast(tx),
                    src as u32,
                    flits,
                    bytes,
                    now,
                    measured,
                    Some(parent),
                    true,
                ));
                self.pending_inj.push((src, pkt, now));
            }
            return;
        }
        match &mut self.multicast {
            MulticastMode::Vct(_) => {
                let delay = self
                    .vct_table
                    .as_mut()
                    .expect("VCT mode has a table")
                    .access(src, set);
                let flits = self.flits_for(bytes);
                let pkt = self.new_packet(PacketInfo::new(
                    PacketDest::Tree(set),
                    src as u32,
                    flits,
                    bytes,
                    now,
                    measured,
                    Some(parent),
                    false,
                ));
                self.pending_inj.push((src, pkt, now + delay));
            }
            // AsUnicasts, or RF multicast from a non-cache source.
            _ => {
                let flits = self.flits_for(bytes);
                for dst in set.iter() {
                    let pkt = self.new_packet(PacketInfo::new(
                        PacketDest::Unicast(dst),
                        src as u32,
                        flits,
                        bytes,
                        now,
                        measured,
                        Some(parent),
                        false,
                    ));
                    self.pending_inj.push((src, pkt, now));
                }
            }
        }
    }

    pub(super) fn apply_pending_injections(&mut self) {
        // Indexed drain (no `mem::take`) so the buffer keeps its capacity.
        // A queued packet makes its router non-quiescent, so mark it for
        // the scheduler sweep.
        for i in 0..self.pending_inj.len() {
            let (router, packet, ready_at) = self.pending_inj[i];
            self.routers[router]
                .injector
                .queue
                .push_back(PendingInjection { packet, ready_at });
            self.mark_active(router);
        }
        self.pending_inj.clear();
    }

}

impl sweep::Sweep<'_> {

    pub(super) fn step_injector(&mut self, r: usize) {
        if self.sh.injection_stalled {
            return;
        }
        let rl = r - self.base;
        let now = self.sh.cycle;
        let depth = self.sh.config.buffer_depth as u32;
        let escape = self.sh.config.vcs_escape;
        let total = self.sh.config.total_vcs();
        // Claim VCs for waiting packets (adaptive class preferred).
        while let Some(&PendingInjection { packet, ready_at }) =
            self.routers[rl].injector.queue.front()
        {
            if ready_at > now {
                break;
            }
            let inj = &self.routers[rl].injector;
            let pick = (escape..total)
                .chain(0..escape)
                .find(|&vc| inj.vc_free(vc, depth));
            let Some(vc) = pick else { break };
            let flits = self.packets.get(packet).flits;
            let inj = &mut self.routers[rl].injector;
            inj.queue.pop_front();
            inj.streams[vc] = Some(InjectStream { packet, total_flits: flits, next: 0 });
        }
        // Stream up to `local_port_speedup` flits per network cycle across
        // the local VCs (the 4 GHz node feeds the 2 GHz network, §3.1).
        let speedup = self.sh.config.local_port_speedup;
        let local = self.sh.local_port(r);
        let mut sent = 0;
        'streaming: while sent < speedup {
            let inj = &mut self.routers[rl].injector;
            let vcs = inj.streams.len();
            for i in 0..vcs {
                let vc = (inj.rr + i) % vcs;
                let Some(stream) = inj.streams[vc] else { continue };
                if inj.credits[vc] == 0 {
                    continue;
                }
                let idx = stream.next;
                let arrival = now + 1;
                let eligible = arrival + if idx == 0 { 2 } else { 1 };
                let flit = Flit { packet: stream.packet, idx, eligible };
                inj.credits[vc] -= 1;
                if idx + 1 == stream.total_flits {
                    inj.streams[vc] = None;
                } else {
                    inj.streams[vc] = Some(InjectStream { next: idx + 1, ..stream });
                }
                inj.rr = (vc + 1) % vcs;
                self.routers[rl].inputs[local]
                    .arrivals
                    .push_back((arrival, vc as u16, flit));
                if self.trace_on() {
                    self.trace_event(flit.packet, flit.idx, r, telemetry::FlitEventKind::Injected);
                }
                sent += 1;
                continue 'streaming;
            }
            break;
        }
    }
}
