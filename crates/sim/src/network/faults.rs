//! Fault application and graceful degradation: scheduled fault events,
//! detour-table rebuilds over the surviving topology, and the watchdog's
//! health diagnosis.

#[allow(clippy::wildcard_imports)]
use super::*;
use crate::fault::{HealthDiagnosis, RecoveryConfig, RecoveryRecord};

/// One fault whose recovery is still being measured.
#[derive(Debug, Clone)]
struct OpenRecovery {
    record: RecoveryRecord,
    /// Pre-fault windowed mean latency; `None` when the fault struck
    /// before any measured completion.
    baseline: Option<f64>,
    /// Waiting for the drain/retune the fault triggered (RF faults).
    awaiting_drain: bool,
    /// Waiting for the table rewrite after the retune.
    awaiting_rewrite: bool,
    /// Cycle the retune was applied (rewrite latency base).
    retune_cycle: u64,
    /// Measured completions observed since the fault — the convergence
    /// test only runs once a full post-fault window exists, so a window
    /// still dominated by pre-fault completions cannot "converge".
    completions_after: u32,
}

/// Live per-fault recovery tracker (see [`crate::SimConfig::recovery`]).
///
/// Purely observational: it reads completion latencies and
/// reconfiguration milestones, and never feeds anything back into the
/// engine, so enabling it is bit-identical to running without it.
#[derive(Debug)]
pub(super) struct RecoveryState {
    config: RecoveryConfig,
    /// Sliding window of the last `config.window` completion latencies.
    recent: VecDeque<u64>,
    sum: u64,
    open: Vec<OpenRecovery>,
    done: Vec<RecoveryRecord>,
}

impl RecoveryState {
    pub(super) fn new(config: RecoveryConfig) -> Self {
        Self {
            config,
            recent: VecDeque::with_capacity(config.window as usize),
            sum: 0,
            open: Vec::new(),
            done: Vec::new(),
        }
    }

    fn windowed_mean(&self) -> Option<f64> {
        if self.recent.is_empty() {
            None
        } else {
            Some(self.sum as f64 / self.recent.len() as f64)
        }
    }

    fn on_fault(&mut self, event: FaultEvent, cycle: u64) {
        self.open.push(OpenRecovery {
            record: RecoveryRecord {
                event,
                fault_cycle: cycle,
                drain_cycles: None,
                rewrite_cycles: None,
                convergence_cycles: None,
            },
            baseline: self.windowed_mean(),
            awaiting_drain: event.rf_only(),
            awaiting_rewrite: false,
            retune_cycle: 0,
            completions_after: 0,
        });
    }

    fn on_retune_applied(&mut self, cycle: u64) {
        for o in &mut self.open {
            if o.awaiting_drain {
                o.record.drain_cycles = Some(cycle - o.record.fault_cycle);
                o.awaiting_drain = false;
                o.awaiting_rewrite = true;
                o.retune_cycle = cycle;
            }
        }
    }

    fn on_tables_rewritten(&mut self, cycle: u64) {
        for o in &mut self.open {
            if o.awaiting_rewrite {
                o.record.rewrite_cycles = Some(cycle - o.retune_cycle);
                o.awaiting_rewrite = false;
            }
        }
    }

    /// Feeds one measured completion into the window and closes every
    /// open record whose post-fault windowed mean is back within
    /// tolerance. Returns the newly-converged records (usually empty —
    /// `Vec::new` does not allocate).
    fn on_completion(&mut self, latency: u64, at: u64) -> Vec<RecoveryRecord> {
        let window = self.config.window as usize;
        self.recent.push_back(latency);
        self.sum += latency;
        if self.recent.len() > window {
            self.sum -= self.recent.pop_front().expect("non-empty window");
        }
        if self.open.is_empty() || self.recent.len() < window {
            for o in &mut self.open {
                o.completions_after += 1;
            }
            return Vec::new();
        }
        let mean = self.sum as f64 / self.recent.len() as f64;
        let mut converged = Vec::new();
        let epsilon = self.config.epsilon;
        self.open.retain_mut(|o| {
            o.completions_after += 1;
            if o.completions_after < self.config.window {
                return true;
            }
            // A fault that struck before any completion has no baseline
            // to return to; a full post-fault window counts as recovery.
            let ok = o.baseline.is_none_or(|b| mean <= b * (1.0 + epsilon));
            if ok {
                o.record.convergence_cycles = Some(at - o.record.fault_cycle);
                converged.push(o.record);
            }
            !ok
        });
        self.done.extend(converged.iter().copied());
        converged
    }

    fn open_count(&self) -> u32 {
        self.open.len() as u32
    }

    /// Drains every record — converged and not — in fault order.
    fn finish(&mut self) -> Vec<RecoveryRecord> {
        let mut out = std::mem::take(&mut self.done);
        out.extend(self.open.drain(..).map(|o| o.record));
        out.sort_by_key(|r| r.fault_cycle);
        out
    }
}

impl Network {

    /// Recovery hook: a retune was applied (drain phase over).
    pub(super) fn recovery_note_retune_applied(&mut self) {
        let cycle = self.cycle;
        if let Some(r) = self.recovery.as_deref_mut() {
            r.on_retune_applied(cycle);
        }
    }

    /// Recovery hook: the routing-table rewrite completed.
    pub(super) fn recovery_note_tables_rewritten(&mut self) {
        let cycle = self.cycle;
        if let Some(r) = self.recovery.as_deref_mut() {
            r.on_tables_rewritten(cycle);
        }
    }

    /// Recovery hook: one measured message completed at `at` with the
    /// given latency. Emits a timeline event per newly-converged fault.
    pub(super) fn recovery_note_completion(&mut self, latency: u64, at: u64) {
        let Some(r) = self.recovery.as_deref_mut() else { return };
        let converged = r.on_completion(latency, at);
        for rec in converged {
            self.tel_event(telemetry::TimelineEventKind::RecoveryConverged {
                fault_cycle: rec.fault_cycle,
                after: rec.convergence_cycles.unwrap_or(0),
            });
        }
    }

    /// Drains the recovery records into the outgoing stats (end of run).
    pub(super) fn finish_recovery(&mut self) {
        if let Some(r) = self.recovery.as_deref_mut() {
            self.stats.recovery = r.finish();
        }
    }

    /// Applies every fault event due this cycle.
    pub(super) fn step_faults(&mut self) {
        if self.faults.is_exhausted() {
            return;
        }
        let mut events = Vec::new();
        self.faults.events_at(self.cycle, &mut events);
        for event in events {
            self.apply_fault(event);
        }
    }

    /// The shortcut set the network is currently trying to realise: the
    /// in-flight retune target if one exists, otherwise what is installed.
    fn rf_intent(&self) -> Vec<Shortcut> {
        if let Some(target) = &self.pending_target {
            return target.clone();
        }
        match &self.reconfig {
            ReconfigState::Draining(target) => target.clone(),
            _ => self.active_shortcuts.clone(),
        }
    }

    /// Routes a new retune target through the drain/retune/rewrite state
    /// machine, merging with whatever is already in flight. Failed
    /// transmitters are filtered at apply time, so the target may still
    /// name them.
    fn request_retune(&mut self, target: Vec<Shortcut>) {
        if self.port_table.is_none() {
            return;
        }
        match &mut self.reconfig {
            ReconfigState::Idle => self.reconfig = ReconfigState::Draining(target),
            ReconfigState::Draining(current) => *current = target,
            ReconfigState::Updating(_) => self.pending_target = Some(target),
        }
    }

    fn apply_fault(&mut self, event: FaultEvent) {
        // Fault events can reroute traffic or delay in-flight flits far
        // from the event site; a blanket mark is cheap insurance (visits
        // to idle routers are no-ops) against missing a wakeup.
        self.mark_all_active();
        self.tel_event(telemetry::TimelineEventKind::Fault(event));
        let cycle = self.cycle;
        if let Some(r) = self.recovery.as_deref_mut() {
            r.on_fault(event, cycle);
        }
        match event {
            FaultEvent::ShortcutDown { src } => self.fail_shortcut(src),
            FaultEvent::BandDown => {
                let sources: Vec<usize> =
                    self.active_shortcuts.iter().map(|s| s.src).collect();
                for src in sources {
                    self.fail_shortcut(src);
                }
            }
            FaultEvent::ShortcutUp { src, dst } => self.repair_shortcut(src, dst),
            FaultEvent::MeshLinkDown { a, b } => self.fail_mesh_link(a, b),
            FaultEvent::MeshLinkUp { a, b } => self.repair_mesh_link(a, b),
            FaultEvent::LinkGlitch { a, b } => self.glitch_link(a, b),
        }
    }

    /// Fail-stop failure of the RF transmitter at `src`: the port refuses
    /// new packets immediately, in-flight wormholes drain, and the
    /// surviving shortcut set is re-routed through the normal
    /// drain/retune/rewrite machinery so traffic degrades onto the mesh.
    fn fail_shortcut(&mut self, src: usize) {
        if self.failed_rf_tx[src] {
            return;
        }
        self.failed_rf_tx[src] = true;
        self.stats.shortcut_faults += 1;
        let rf = self.rf_port(src);
        if self.routers[src].outputs[rf].exists {
            self.routers[src].outputs[rf].failed = true;
            self.request_retune(self.rf_intent());
        }
    }

    /// Repairs the RF transmitter at `src` and retunes it toward `dst`,
    /// unless that would violate the one-in/one-out port constraint
    /// against the current intent (the repair is then recorded but the
    /// shortcut stays out of service).
    fn repair_shortcut(&mut self, src: usize, dst: usize) {
        self.failed_rf_tx[src] = false;
        self.stats.repairs += 1;
        let mut intent = self.rf_intent();
        intent.retain(|s| s.src != src);
        intent.push(Shortcut::new(src, dst));
        if check_shortcut_set(&intent, self.dims.nodes()).is_ok() {
            self.request_retune(intent);
        }
    }

    fn fail_mesh_link(&mut self, a: usize, b: usize) {
        let port_ab = self.fabric.port_between(a, b).expect("validated base link") as usize;
        let port_ba = self.fabric.port_between(b, a).expect("validated base link") as usize;
        let mb = self.max_base();
        if self.link_failed[a * mb + port_ab] {
            return;
        }
        self.link_failed[a * mb + port_ab] = true;
        self.link_failed[b * mb + port_ba] = true;
        self.routers[a].outputs[port_ab].failed = true;
        self.routers[b].outputs[port_ba].failed = true;
        self.mesh_link_failures += 1;
        self.stats.mesh_link_faults += 1;
        self.refresh_detour_state(a, b, true);
    }

    fn repair_mesh_link(&mut self, a: usize, b: usize) {
        let port_ab = self.fabric.port_between(a, b).expect("validated base link") as usize;
        let port_ba = self.fabric.port_between(b, a).expect("validated base link") as usize;
        let mb = self.max_base();
        if !self.link_failed[a * mb + port_ab] {
            return;
        }
        self.link_failed[a * mb + port_ab] = false;
        self.link_failed[b * mb + port_ba] = false;
        self.routers[a].outputs[port_ab].failed = false;
        self.routers[b].outputs[port_ba].failed = false;
        self.mesh_link_failures -= 1;
        self.stats.repairs += 1;
        self.refresh_detour_state(a, b, false);
    }

    /// A transient glitch corrupts the flit in flight from `a` to `b`: the
    /// receiver drops it and the sender retransmits from its buffer, so
    /// the flit (and the link behind it) is simply delayed by
    /// [`SimConfig::link_retry_cycles`]. Credits are untouched — the
    /// upstream buffer slot is only freed when the retransmitted flit
    /// finally lands. No effect on an idle link.
    fn glitch_link(&mut self, a: usize, b: usize) {
        let rf = self.rf_port(b);
        let port = if let Some(slot) = self.fabric.port_between(b, a) {
            slot as usize
        } else if self.routers[b].inputs[rf]
            .upstream
            .is_some_and(|(src, _)| src == a)
        {
            rf
        } else {
            return;
        };
        let retry = self.config.link_retry_cycles;
        if let Some((at, _, flit)) = self.routers[b].inputs[port].arrivals.front_mut() {
            *at += retry;
            flit.eligible += retry;
            self.stats.retransmitted_flits += 1;
        }
    }

    /// Recomputes the detour tables after the base link between `a` and
    /// `b` failed (`removed`) or was repaired. With an intact fabric the
    /// escape table is dropped entirely, restoring the exact base-route
    /// escape behaviour of the fault-free simulator. While faults persist,
    /// the rebuild is *incremental*: only the destination columns whose
    /// reverse-BFS trees actually ride the changed link are re-swept, so a
    /// fault storm on a 64×64 fabric costs a handful of column sweeps
    /// instead of `n` full-grid rebuilds. The incremental result is
    /// bit-identical to a from-scratch build (per-destination BFS columns
    /// are independent and deterministic).
    fn refresh_detour_state(&mut self, a: usize, b: usize, removed: bool) {
        if self.mesh_link_failures == 0 {
            self.escape_table = None;
            self.escape_dist = None;
        } else if self.escape_dist.is_some() {
            let mut pt = self.escape_table.take().expect("escape tables travel together");
            let mut td = self.escape_dist.take().expect("checked above");
            self.detour_tables_update(&[], &mut pt, None, &mut td, a, b, removed);
            self.escape_table = Some(pt);
            self.escape_dist = Some(td);
        } else {
            let (pt, _, td) = self.detour_tables(&[]);
            self.escape_table = Some(pt);
            self.escape_dist = Some(td);
        }
        if self.port_table.is_some() {
            self.rebuild_unicast_tables_after_link_change(a, b, removed);
        }
    }

    /// Incremental counterpart of
    /// [`rebuild_unicast_tables`](Network::rebuild_unicast_tables) for a
    /// single base-link failure or repair. Falls back to the full rebuild
    /// when the fabric just became intact again (back to the
    /// [`GridGraph`] tie-breaks) or when the installed tables were not
    /// detour-built (first intact→faulty transition).
    fn rebuild_unicast_tables_after_link_change(&mut self, a: usize, b: usize, removed: bool) {
        if self.mesh_link_failures == 0 || self.detour_dist.is_none() {
            self.rebuild_unicast_tables();
            return;
        }
        let mut pt = self.port_table.take().expect("table-routed network");
        let mut dm = self.sp_dist.take().expect("sp_dist accompanies port_table");
        let mut td = self.detour_dist.take().expect("checked above");
        let shortcuts = self.active_shortcuts.clone();
        self.detour_tables_update(&shortcuts, &mut pt, Some(&mut dm), &mut td, a, b, removed);
        self.port_table = Some(pt);
        self.sp_dist = Some(dm);
        self.detour_dist = Some(td);
    }

    /// Per-destination reverse BFS over the surviving base links plus the
    /// given (directed) shortcuts. Returns the out-port table, the hop
    /// distances (`router * n + dest`, falling back to the base-route
    /// length for unreachable pairs), and the *true* BFS distances
    /// (`u32::MAX` when unreachable) that drive incremental updates.
    /// An unreachable pair keeps its base-route port: such a packet blocks
    /// at a failed link, where the watchdog will flag the partition rather
    /// than let it misroute.
    pub(super) fn detour_tables(&self, shortcuts: &[Shortcut]) -> (Vec<u8>, Vec<u32>, Vec<u32>) {
        let n = self.dims.nodes();
        let mut pt = vec![0u8; n * n];
        let mut dm = vec![0u32; n * n];
        let mut td = vec![0u32; n * n];
        let mut rf_srcs_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        for s in shortcuts {
            rf_srcs_of[s.dst].push(s.src);
        }
        let mut dist = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        for d in 0..n {
            self.detour_bfs_column(d, &rf_srcs_of, &mut pt, Some(&mut dm), &mut td, &mut dist, &mut queue);
        }
        (pt, dm, td)
    }

    /// Re-sweeps only the destination columns the changed link `a <-> b`
    /// can affect, updating `pt`/`dm`/`td` in place. Returns how many
    /// columns were recomputed (the rest are provably unchanged).
    ///
    /// A *removed* link matters to destination `d` only where one of its
    /// directions is a BFS discovery edge, i.e. the out-port table routes
    /// `a` through `b` (or vice versa). A *restored* link can only change
    /// a column where its endpoints sat at different BFS depths — at equal
    /// (finite) depth it can neither shorten a path nor become a discovery
    /// edge, and a column unreachable from both endpoints stays
    /// unreachable.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn detour_tables_update(
        &self,
        shortcuts: &[Shortcut],
        pt: &mut [u8],
        mut dm: Option<&mut [u32]>,
        td: &mut [u32],
        a: usize,
        b: usize,
        removed: bool,
    ) -> usize {
        let n = self.dims.nodes();
        let p_ab = self.fabric.port_between(a, b).expect("validated base link");
        let p_ba = self.fabric.port_between(b, a).expect("validated base link");
        let mut rf_srcs_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        for s in shortcuts {
            rf_srcs_of[s.dst].push(s.src);
        }
        let mut dist = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        let mut recomputed = 0;
        for d in 0..n {
            let ta = td[a * n + d];
            let tb = td[b * n + d];
            let affected = if removed {
                (ta != u32::MAX && pt[a * n + d] == p_ab)
                    || (tb != u32::MAX && pt[b * n + d] == p_ba)
            } else {
                (ta > tb && tb != u32::MAX) || (tb > ta && ta != u32::MAX)
            };
            if affected {
                self.detour_bfs_column(
                    d,
                    &rf_srcs_of,
                    pt,
                    dm.as_deref_mut(),
                    td,
                    &mut dist,
                    &mut queue,
                );
                recomputed += 1;
            }
        }
        recomputed
    }

    /// One column of the detour build: resets destination `d`'s column to
    /// the base-route fill, then reverse-BFSes from `d` over the surviving
    /// base links (in fabric slot order, so a rebuild of the same column
    /// is deterministic) and the shortcut in-edges.
    #[allow(clippy::too_many_arguments)]
    fn detour_bfs_column(
        &self,
        d: usize,
        rf_srcs_of: &[Vec<usize>],
        pt: &mut [u8],
        mut dm: Option<&mut [u32]>,
        td: &mut [u32],
        dist: &mut [u32],
        queue: &mut VecDeque<usize>,
    ) {
        let n = self.dims.nodes();
        for r in 0..n {
            if r == d {
                pt[r * n + d] = self.local_port(r) as u8;
                td[r * n + d] = 0;
                if let Some(dm) = dm.as_deref_mut() {
                    dm[r * n + d] = 0;
                }
            } else {
                pt[r * n + d] = self.base_port_toward(r, d);
                td[r * n + d] = u32::MAX;
                if let Some(dm) = dm.as_deref_mut() {
                    dm[r * n + d] = self.fabric.base_route_len(r, d);
                }
            }
        }
        dist.fill(u32::MAX);
        queue.clear();
        dist[d] = 0;
        queue.push_back(d);
        let mb = self.max_base();
        while let Some(v) = queue.pop_front() {
            // Incoming surviving base links u -> v.
            for slot in 0..self.base_ports[v] {
                let Some(u) = self.fabric.port_neighbor(v, slot) else { continue };
                let out_at_u =
                    self.fabric.port_between(u, v).expect("base links are bidirectional") as usize;
                if self.link_failed[u * mb + out_at_u] || dist[u] != u32::MAX {
                    continue;
                }
                dist[u] = dist[v] + 1;
                pt[u * n + d] = out_at_u as u8;
                td[u * n + d] = dist[u];
                if let Some(dm) = dm.as_deref_mut() {
                    dm[u * n + d] = dist[u];
                }
                queue.push_back(u);
            }
            // Incoming shortcut edges u -> v.
            for &u in &rf_srcs_of[v] {
                if dist[u] == u32::MAX {
                    dist[u] = dist[v] + 1;
                    pt[u * n + d] = self.rf_port(u) as u8;
                    td[u * n + d] = dist[u];
                    if let Some(dm) = dm.as_deref_mut() {
                        dm[u * n + d] = dist[u];
                    }
                    queue.push_back(u);
                }
            }
        }
    }

    /// Whether the surviving base fabric still connects every router.
    fn surviving_mesh_connected(&self) -> bool {
        let n = self.dims.nodes();
        let mb = self.max_base();
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        while let Some(v) = queue.pop_front() {
            for slot in 0..self.base_ports[v] {
                let Some(u) = self.fabric.port_neighbor(v, slot) else { continue };
                if seen[u] || self.link_failed[v * mb + slot as usize] {
                    continue;
                }
                seen[u] = true;
                queue.push_back(u);
            }
        }
        seen.iter().all(|&s| s)
    }

    /// Builds the watchdog's structured report: `no_grants` distinguishes
    /// a full stall (deadlock) from motion without completion (livelock);
    /// a disconnected surviving mesh overrides both.
    pub(super) fn health_report(
        &self,
        stalled_for: u64,
        since_completion: u64,
        no_grants: bool,
    ) -> HealthReport {
        let diagnosis = if !self.surviving_mesh_connected() {
            HealthDiagnosis::Partitioned
        } else if no_grants {
            HealthDiagnosis::Deadlock
        } else {
            HealthDiagnosis::Livelock
        };
        HealthReport {
            diagnosis,
            cycle: self.cycle,
            outstanding: self.measured_outstanding,
            stalled_for,
            since_completion,
            recovering_faults: self.recovery.as_deref().map_or(0, RecoveryState::open_count),
        }
    }
}
