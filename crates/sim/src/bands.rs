//! Multi-band frequency allocation on the RF-I transmission lines
//! (paper §2, §3.2).
//!
//! The RF-I medium is a bundle of on-chip transmission lines shared by
//! frequency-division multiplexing: each of the `N` mixers on the
//! transmitting side up-converts one data stream into its own frequency
//! band, and the matching receiver mixer + low-pass filter recovers it.
//! The paper's budget: **256 B/cycle aggregate = 4096 Gbps at 2 GHz**,
//! carried on **43 parallel transmission lines of 96 Gbps** each; carved
//! into **16-byte channels**, that is a budget of 16 simultaneous
//! shortcuts (or 15 + one broadcast band for multicast).
//!
//! [`BandPlan`] performs that carving: it assigns every shortcut a band
//! index, optionally reserves a broadcast band, checks the budget, and
//! produces the per-router tuning tables ("each transmitter or receiver
//! in the topology will be tuned to a particular frequency (or disabled
//! entirely)", §3.2 step 2).

use crate::packet::DestSet;
use rfnoc_topology::{NodeId, Shortcut};
use std::collections::HashMap;

/// Aggregate RF-I budget and channelisation (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfBudget {
    /// Aggregate bandwidth in bytes per network cycle (paper: 256).
    pub aggregate_bytes_per_cycle: u32,
    /// Bytes per channel (paper: 16).
    pub channel_bytes: u32,
    /// Bandwidth of one physical transmission line in Gbps (paper: 96).
    pub line_gbps: f64,
    /// Network clock in Hz (paper: 2 GHz).
    pub clock_hz: f64,
}

impl RfBudget {
    /// The paper's budget: 256B aggregate in 16B channels at 2 GHz over
    /// 96 Gbps lines.
    pub fn paper_default() -> Self {
        Self {
            aggregate_bytes_per_cycle: 256,
            channel_bytes: 16,
            line_gbps: 96.0,
            clock_hz: 2.0e9,
        }
    }

    /// Aggregate bandwidth in Gbps (paper: 4096).
    pub fn aggregate_gbps(&self) -> f64 {
        self.aggregate_bytes_per_cycle as f64 * 8.0 * self.clock_hz / 1e9
    }

    /// Number of 16B channels (bands) available (paper: 16).
    pub fn channels(&self) -> usize {
        (self.aggregate_bytes_per_cycle / self.channel_bytes) as usize
    }

    /// Physical transmission lines needed to carry the aggregate
    /// bandwidth (paper: 43).
    pub fn transmission_lines(&self) -> usize {
        (self.aggregate_gbps() / self.line_gbps).ceil() as usize
    }
}

impl Default for RfBudget {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// What a router's RF transmitter or receiver is tuned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tuning {
    /// Powered down (the router has no active role on the RF-I).
    Disabled,
    /// Tuned to the point-to-point shortcut band with this index.
    Shortcut(usize),
    /// Tuned to the shared broadcast (multicast) band.
    Broadcast,
}

/// A complete frequency-band assignment: shortcut bands, optional
/// broadcast band, and per-router Tx/Rx tuning tables.
#[derive(Debug, Clone, PartialEq)]
pub struct BandPlan {
    budget: RfBudget,
    shortcuts: Vec<Shortcut>,
    broadcast_band: Option<usize>,
    tx: HashMap<NodeId, Tuning>,
    rx: HashMap<NodeId, Tuning>,
    broadcast_rx: Vec<NodeId>,
}

/// Errors produced when a band plan cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanBandsError {
    /// More channels requested than the aggregate budget provides.
    BudgetExceeded {
        /// Channels requested (shortcuts + broadcast).
        requested: usize,
        /// Channels available.
        available: usize,
    },
    /// A router would need two transmitters (two outbound shortcuts).
    DuplicateTransmitter(NodeId),
    /// A router would need two receivers (two inbound shortcuts, or a
    /// shortcut receiver also tuned to the broadcast band).
    DuplicateReceiver(NodeId),
}

impl std::fmt::Display for PlanBandsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanBandsError::BudgetExceeded { requested, available } => write!(
                f,
                "requested {requested} channels but the RF-I budget provides {available}"
            ),
            PlanBandsError::DuplicateTransmitter(r) => {
                write!(f, "router {r} would need two RF transmitters")
            }
            PlanBandsError::DuplicateReceiver(r) => {
                write!(f, "router {r} would need two RF receivers")
            }
        }
    }
}

impl std::error::Error for PlanBandsError {}

impl BandPlan {
    /// Builds a band plan: one band per shortcut (in order) and, when
    /// `broadcast_receivers` is non-empty, a dedicated broadcast band that
    /// all those receivers tune to.
    ///
    /// # Errors
    ///
    /// Returns an error if the budget is exceeded or any router would need
    /// more than one transmitter or receiver (the paper's 6-port limit).
    pub fn new(
        budget: RfBudget,
        shortcuts: &[Shortcut],
        broadcast_receivers: &[NodeId],
    ) -> Result<Self, PlanBandsError> {
        let broadcast = !broadcast_receivers.is_empty();
        let requested = shortcuts.len() + usize::from(broadcast);
        let available = budget.channels();
        if requested > available {
            return Err(PlanBandsError::BudgetExceeded { requested, available });
        }
        let mut tx = HashMap::new();
        let mut rx = HashMap::new();
        for (band, s) in shortcuts.iter().enumerate() {
            if tx.insert(s.src, Tuning::Shortcut(band)).is_some() {
                return Err(PlanBandsError::DuplicateTransmitter(s.src));
            }
            if rx.insert(s.dst, Tuning::Shortcut(band)).is_some() {
                return Err(PlanBandsError::DuplicateReceiver(s.dst));
            }
        }
        let broadcast_band = broadcast.then_some(shortcuts.len());
        for &r in broadcast_receivers {
            if rx.insert(r, Tuning::Broadcast).is_some() {
                return Err(PlanBandsError::DuplicateReceiver(r));
            }
        }
        Ok(Self {
            budget,
            shortcuts: shortcuts.to_vec(),
            broadcast_band,
            tx,
            rx,
            broadcast_rx: broadcast_receivers.to_vec(),
        })
    }

    /// The budget this plan was carved from.
    pub fn budget(&self) -> RfBudget {
        self.budget
    }

    /// The band index carrying shortcut `i` (its position in the input).
    pub fn shortcut_band(&self, i: usize) -> Option<usize> {
        (i < self.shortcuts.len()).then_some(i)
    }

    /// The broadcast band index, if one was reserved.
    pub fn broadcast_band(&self) -> Option<usize> {
        self.broadcast_band
    }

    /// Bands in use (shortcuts + broadcast).
    pub fn bands_used(&self) -> usize {
        self.shortcuts.len() + usize::from(self.broadcast_band.is_some())
    }

    /// Spare channels left in the budget.
    pub fn bands_free(&self) -> usize {
        self.budget.channels() - self.bands_used()
    }

    /// The transmitter tuning of `router`.
    pub fn tx_tuning(&self, router: NodeId) -> Tuning {
        self.tx.get(&router).copied().unwrap_or(Tuning::Disabled)
    }

    /// The receiver tuning of `router`.
    pub fn rx_tuning(&self, router: NodeId) -> Tuning {
        self.rx.get(&router).copied().unwrap_or(Tuning::Disabled)
    }

    /// Routers whose receivers listen on the broadcast band.
    pub fn broadcast_receivers(&self) -> &[NodeId] {
        &self.broadcast_rx
    }

    /// Retunes the plan for a new shortcut set (a reconfiguration, §3.2):
    /// same budget, same broadcast receivers minus any now used as
    /// shortcut endpoints.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BandPlan::new`].
    pub fn retune(&self, shortcuts: &[Shortcut]) -> Result<Self, PlanBandsError> {
        let shortcut_rx: DestSet = shortcuts.iter().map(|s| s.dst).collect();
        let receivers: Vec<NodeId> = self
            .broadcast_rx
            .iter()
            .copied()
            .filter(|r| !shortcut_rx.contains(*r))
            .collect();
        Self::new(self.budget, shortcuts, &receivers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budget_figures() {
        let b = RfBudget::paper_default();
        assert_eq!(b.aggregate_gbps(), 4096.0);
        assert_eq!(b.channels(), 16);
        assert_eq!(b.transmission_lines(), 43);
    }

    #[test]
    fn plan_assigns_distinct_bands() {
        let shortcuts = vec![Shortcut::new(0, 9), Shortcut::new(5, 3)];
        let plan = BandPlan::new(RfBudget::paper_default(), &shortcuts, &[]).unwrap();
        assert_eq!(plan.tx_tuning(0), Tuning::Shortcut(0));
        assert_eq!(plan.rx_tuning(9), Tuning::Shortcut(0));
        assert_eq!(plan.tx_tuning(5), Tuning::Shortcut(1));
        assert_eq!(plan.rx_tuning(3), Tuning::Shortcut(1));
        assert_eq!(plan.tx_tuning(7), Tuning::Disabled);
        assert_eq!(plan.bands_used(), 2);
        assert_eq!(plan.bands_free(), 14);
        assert_eq!(plan.broadcast_band(), None);
    }

    #[test]
    fn broadcast_band_reserved_after_shortcuts() {
        let shortcuts = vec![Shortcut::new(0, 9)];
        let plan =
            BandPlan::new(RfBudget::paper_default(), &shortcuts, &[2, 4, 6]).unwrap();
        assert_eq!(plan.broadcast_band(), Some(1));
        assert_eq!(plan.rx_tuning(4), Tuning::Broadcast);
        assert_eq!(plan.bands_used(), 2);
        assert_eq!(plan.broadcast_receivers(), &[2, 4, 6]);
    }

    #[test]
    fn budget_enforced() {
        let shortcuts: Vec<Shortcut> = (0..16).map(|i| Shortcut::new(i, i + 20)).collect();
        // 16 shortcuts alone fit…
        assert!(BandPlan::new(RfBudget::paper_default(), &shortcuts, &[]).is_ok());
        // …but 16 + broadcast does not.
        let err = BandPlan::new(RfBudget::paper_default(), &shortcuts, &[50]).unwrap_err();
        assert_eq!(err, PlanBandsError::BudgetExceeded { requested: 17, available: 16 });
        assert!(err.to_string().contains("16"));
    }

    #[test]
    fn port_conflicts_detected() {
        let two_tx = vec![Shortcut::new(0, 9), Shortcut::new(0, 5)];
        assert_eq!(
            BandPlan::new(RfBudget::paper_default(), &two_tx, &[]).unwrap_err(),
            PlanBandsError::DuplicateTransmitter(0)
        );
        let two_rx = vec![Shortcut::new(1, 9), Shortcut::new(2, 9)];
        assert_eq!(
            BandPlan::new(RfBudget::paper_default(), &two_rx, &[]).unwrap_err(),
            PlanBandsError::DuplicateReceiver(9)
        );
        // shortcut receiver cannot also listen to the broadcast band
        let sc = vec![Shortcut::new(1, 9)];
        assert_eq!(
            BandPlan::new(RfBudget::paper_default(), &sc, &[9]).unwrap_err(),
            PlanBandsError::DuplicateReceiver(9)
        );
    }

    #[test]
    fn retune_preserves_broadcast_receivers() {
        let plan =
            BandPlan::new(RfBudget::paper_default(), &[Shortcut::new(0, 9)], &[2, 4]).unwrap();
        // retune so a broadcast receiver becomes a shortcut receiver
        let retuned = plan.retune(&[Shortcut::new(1, 4)]).unwrap();
        assert_eq!(retuned.rx_tuning(4), Tuning::Shortcut(0));
        assert_eq!(retuned.broadcast_receivers(), &[2]);
        assert_eq!(retuned.rx_tuning(9), Tuning::Disabled, "old shortcut dropped");
    }
}
