//! Flits: the unit of link-level transfer in wormhole routing.

/// A flit in flight or buffered. One flit occupies one link-width slot
/// (the mesh link width; RF-I channels carry `16B / width` flits per cycle).
///
/// Flits carry only an index into the packet table; head/tail status is
/// derived from the packet's flit count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Flit {
    /// Index into the simulator's packet table.
    pub packet: u32,
    /// Position within the packet (0 = head).
    pub idx: u32,
    /// Earliest cycle at which this flit may be considered by the next
    /// pipeline stage (models RC/VA for heads, SA entry for bodies).
    pub eligible: u64,
}

impl Flit {
    /// Whether this is the packet's head flit.
    pub fn is_head(&self) -> bool {
        self.idx == 0
    }

    /// Whether this is the packet's tail flit given the packet length.
    pub fn is_tail(&self, packet_flits: u32) -> bool {
        self.idx + 1 == packet_flits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_and_tail_flags() {
        let f = Flit { packet: 0, idx: 0, eligible: 0 };
        assert!(f.is_head());
        assert!(f.is_tail(1)); // single-flit packet is both
        assert!(!f.is_tail(3));
        let t = Flit { packet: 0, idx: 2, eligible: 0 };
        assert!(!t.is_head());
        assert!(t.is_tail(3));
    }
}
