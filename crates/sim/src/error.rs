//! Result-based error layer for the simulator's public API.
//!
//! The seed version of this crate panicked on every misuse: invalid
//! configurations, malformed shortcut sets, reconfiguration while one was
//! already in flight. A production-scale service embedding the simulator
//! needs to *reject* bad inputs, not die on them, so the fallible entry
//! points ([`crate::SimConfig::validate`], [`crate::Network::try_new`],
//! [`crate::Network::reconfigure`]) return these types. The panicking
//! constructors remain as thin `expect` wrappers for tests and examples.

use std::error::Error;
use std::fmt;

/// A rejected [`crate::SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// No virtual channels at all.
    NoVcs,
    /// No escape virtual channels — escape VCs are required for deadlock
    /// freedom (§4).
    NoEscapeVcs,
    /// No adaptive virtual channels (`vcs_escape` must be strictly less
    /// than the total so shortcut-capable VCs exist).
    NoAdaptiveVcs,
    /// Flit buffers must hold at least one flit.
    ZeroBufferDepth,
    /// The measurement window is empty.
    EmptyMeasureWindow,
    /// The local injection/ejection port moves no flits.
    NoLocalBandwidth,
    /// The sharded cycle engine was configured with zero worker threads.
    ZeroSimThreads,
    /// The watchdog window is shorter than a routing-table rewrite stall,
    /// which would flag healthy reconfigurations as hangs.
    WatchdogTooTight {
        /// The configured watchdog window.
        watchdog: u64,
        /// The minimum meaningful window.
        minimum: u64,
    },
    /// Telemetry was enabled with a zero sampling interval.
    ZeroTelemetryInterval,
    /// The run ledger was enabled with a zero heartbeat interval.
    ZeroLedgerInterval,
    /// A ledger follower (`tail --follow`, `serve-obs`) was asked to
    /// poll with a zero-millisecond interval, which would spin a CPU
    /// core re-reading the file.
    ZeroPollInterval,
    /// Recovery tracking was enabled with a zero-completion window.
    ZeroRecoveryWindow,
    /// Recovery tracking was enabled with a non-positive convergence
    /// tolerance.
    NonPositiveRecoveryEpsilon,
    /// A fault event names a router outside the grid.
    FaultRouterOutOfRange {
        /// The offending router id.
        router: usize,
        /// Number of routers in the grid.
        nodes: usize,
    },
    /// A mesh-link fault names two routers that are not mesh neighbours.
    FaultLinkNotAdjacent {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// A repair event precedes any failure of the same resource, so the
    /// plan would silently no-op (or worse, double-repair).
    FaultRepairBeforeFail {
        /// Cycle of the premature repair.
        cycle: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoVcs => write!(f, "need at least one VC"),
            Self::NoEscapeVcs => {
                write!(f, "escape VCs are required for deadlock freedom")
            }
            Self::NoAdaptiveVcs => write!(
                f,
                "vcs_escape must be less than the total VC count (need at least one adaptive VC)"
            ),
            Self::ZeroBufferDepth => write!(f, "buffers must hold at least one flit"),
            Self::EmptyMeasureWindow => write!(f, "measurement window must be non-empty"),
            Self::NoLocalBandwidth => write!(f, "local port needs bandwidth"),
            Self::ZeroSimThreads => {
                write!(f, "simulation threads must be at least 1")
            }
            Self::WatchdogTooTight { watchdog, minimum } => write!(
                f,
                "watchdog window of {watchdog} cycles is below the {minimum}-cycle minimum"
            ),
            Self::ZeroTelemetryInterval => {
                write!(f, "telemetry sampling interval must be non-zero")
            }
            Self::ZeroLedgerInterval => {
                write!(f, "ledger heartbeat interval must be non-zero")
            }
            Self::ZeroPollInterval => {
                write!(f, "poll interval must be a non-zero number of milliseconds")
            }
            Self::ZeroRecoveryWindow => {
                write!(f, "recovery tracking needs a non-zero completion window")
            }
            Self::NonPositiveRecoveryEpsilon => {
                write!(f, "recovery convergence tolerance must be positive")
            }
            Self::FaultRouterOutOfRange { router, nodes } => {
                write!(f, "fault event names router {router}, but the grid has {nodes} routers")
            }
            Self::FaultLinkNotAdjacent { a, b } => {
                write!(f, "mesh-link fault between non-adjacent routers {a} and {b}")
            }
            Self::FaultRepairBeforeFail { cycle } => {
                write!(f, "repair at cycle {cycle} precedes any failure of that resource")
            }
        }
    }
}

impl Error for ConfigError {}

/// A rejected live reconfiguration request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigError {
    /// The network routes by XY; there are no tables to rewrite.
    XyRouting,
    /// A reconfiguration is already draining or updating.
    InProgress,
    /// A shortcut endpoint does not name a router.
    EndpointOutOfRange {
        /// The offending shortcut's source.
        src: usize,
        /// The offending shortcut's destination.
        dst: usize,
    },
    /// A shortcut connects a router to itself.
    SelfLoop {
        /// The router with the self-loop.
        router: usize,
    },
    /// Two shortcuts transmit from the same router (one Tx per router).
    DuplicateSource {
        /// The over-subscribed router.
        router: usize,
    },
    /// Two shortcuts receive at the same router (one Rx per router).
    DuplicateDest {
        /// The over-subscribed router.
        router: usize,
    },
}

impl fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::XyRouting => {
                write!(f, "reconfiguration requires shortest-path (table) routing")
            }
            Self::InProgress => write!(f, "reconfiguration already in progress"),
            Self::EndpointOutOfRange { src, dst } => {
                write!(f, "shortcut {src} -> {dst} endpoint out of range")
            }
            Self::SelfLoop { router } => {
                write!(f, "shortcut at router {router} is a self-loop")
            }
            Self::DuplicateSource { router } => {
                write!(f, "router {router} has two outbound shortcuts")
            }
            Self::DuplicateDest { router } => {
                write!(f, "router {router} has two inbound shortcuts")
            }
        }
    }
}

impl Error for ReconfigError {}

/// A rejected network specification or simulator request.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The microarchitectural configuration is degenerate.
    Config(ConfigError),
    /// The fabric topology is degenerate (see [`rfnoc_topology::TopologyError`]).
    Fabric(rfnoc_topology::TopologyError),
    /// The shortcut set violates the one-in/one-out port constraint.
    Shortcuts(ReconfigError),
    /// RF broadcast multicast on a fabric without the mesh-wide RF medium.
    RfMulticastNeedsMesh,
    /// Shortcuts were supplied to an XY-routed network.
    ShortcutsOnXy,
    /// RF multicast mode without an [`crate::McConfig`].
    MissingMcConfig,
    /// The fault plan names a resource outside the network.
    InvalidFault {
        /// The cycle of the offending event.
        cycle: u64,
        /// Why the event is invalid.
        reason: String,
    },
    /// A unicast message whose source equals its destination.
    SelfUnicast {
        /// The offending node.
        node: usize,
    },
    /// A multicast message with no destinations.
    EmptyMulticast,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(e) => write!(f, "{e}"),
            Self::Fabric(e) => write!(f, "{e}"),
            Self::Shortcuts(e) => write!(f, "{e}"),
            Self::RfMulticastNeedsMesh => {
                write!(f, "RF broadcast multicast requires the mesh fabric")
            }
            Self::ShortcutsOnXy => {
                write!(f, "XY routing cannot use shortcuts; use ShortestPath")
            }
            Self::MissingMcConfig => write!(f, "RF multicast requires an McConfig"),
            Self::InvalidFault { cycle, reason } => {
                write!(f, "invalid fault event at cycle {cycle}: {reason}")
            }
            Self::SelfUnicast { node } => write!(f, "unicast to self at node {node}"),
            Self::EmptyMulticast => write!(f, "empty multicast destination set"),
        }
    }
}

impl Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<ReconfigError> for SimError {
    fn from(e: ReconfigError) -> Self {
        Self::Shortcuts(e)
    }
}

impl From<rfnoc_topology::TopologyError> for SimError {
    fn from(e: rfnoc_topology::TopologyError) -> Self {
        Self::Fabric(e)
    }
}

/// Checks a shortcut set against the one-in/one-out port constraint
/// (§3.2: each router hosts at most one RF transmitter and one receiver)
/// over `n` routers, including the self-loop case the seed version
/// silently accepted.
pub(crate) fn check_shortcut_set(
    shortcuts: &[rfnoc_topology::Shortcut],
    n: usize,
) -> Result<(), ReconfigError> {
    let mut out_used = vec![false; n];
    let mut in_used = vec![false; n];
    for s in shortcuts {
        if s.src >= n || s.dst >= n {
            return Err(ReconfigError::EndpointOutOfRange { src: s.src, dst: s.dst });
        }
        if s.src == s.dst {
            return Err(ReconfigError::SelfLoop { router: s.src });
        }
        if out_used[s.src] {
            return Err(ReconfigError::DuplicateSource { router: s.src });
        }
        if in_used[s.dst] {
            return Err(ReconfigError::DuplicateDest { router: s.dst });
        }
        out_used[s.src] = true;
        in_used[s.dst] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfnoc_topology::Shortcut;

    #[test]
    fn shortcut_set_accepts_legal_sets() {
        assert_eq!(
            check_shortcut_set(&[Shortcut::new(0, 5), Shortcut::new(5, 0)], 16),
            Ok(())
        );
    }

    #[test]
    fn shortcut_set_rejects_self_loops() {
        assert_eq!(
            check_shortcut_set(&[Shortcut::new(3, 3)], 16),
            Err(ReconfigError::SelfLoop { router: 3 })
        );
    }

    #[test]
    fn shortcut_set_rejects_duplicate_ports() {
        assert_eq!(
            check_shortcut_set(&[Shortcut::new(0, 5), Shortcut::new(0, 6)], 16),
            Err(ReconfigError::DuplicateSource { router: 0 })
        );
        assert_eq!(
            check_shortcut_set(&[Shortcut::new(0, 5), Shortcut::new(1, 5)], 16),
            Err(ReconfigError::DuplicateDest { router: 5 })
        );
    }

    #[test]
    fn shortcut_set_rejects_out_of_range() {
        assert_eq!(
            check_shortcut_set(&[Shortcut::new(0, 99)], 16),
            Err(ReconfigError::EndpointOutOfRange { src: 0, dst: 99 })
        );
    }

    #[test]
    fn errors_display() {
        assert!(ConfigError::NoEscapeVcs.to_string().contains("escape VCs"));
        assert!(ConfigError::ZeroPollInterval.to_string().contains("poll interval"));
        assert!(ReconfigError::XyRouting.to_string().contains("shortest-path"));
        assert!(SimError::ShortcutsOnXy.to_string().contains("XY routing"));
    }
}
