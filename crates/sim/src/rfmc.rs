//! RF-I multicast configuration (paper §3.3).
//!
//! One RF-I frequency band acts as a shared broadcast channel. Cache banks
//! are the only multicast senders; each of the four cache-bank clusters
//! designates its central bank as the cluster's multicast transmitter, and a
//! coarse-grain arbiter rotates channel ownership between clusters. All
//! multicast-tuned receivers hear every flit; a 64-bit destination bit
//! vector (DBV) in the first flit tells each receiver whether any of the
//! cores it serves are addressed — if not, it power-gates for the
//! remainder of the message.

use crate::packet::DestSet;
use rfnoc_topology::{GridDims, NodeId};

/// Configuration of the RF-I multicast channel.
#[derive(Debug, Clone, PartialEq)]
pub struct McConfig {
    /// Designated transmitter router per cache cluster (the cluster's
    /// central cache bank).
    pub transmitters: Vec<NodeId>,
    /// Cluster id of each router that hosts a cache bank (`None` for
    /// non-cache routers).
    pub cluster_of: Vec<Option<usize>>,
    /// Routers whose RF receiver is tuned to the multicast band.
    pub receivers: Vec<NodeId>,
    /// For every router, the receiver router that serves multicast
    /// deliveries to it (`None` if the router never receives multicasts).
    pub serving: Vec<Option<NodeId>>,
    /// Cycles between coarse-grain arbitration decisions (channel ownership
    /// rotates round-robin between clusters every epoch).
    pub epoch_cycles: u64,
    /// Width of one RF broadcast flit in bytes (16 in the paper).
    pub rf_flit_bytes: u32,
}

impl McConfig {
    /// Builds the serving map: each router is served by its nearest
    /// multicast receiver (ties break toward the lower router id).
    ///
    /// With the paper's 50 staggered RF-enabled routers, "every receiver
    /// will handle multicast messages for two cores: the core at the
    /// RF-enabled router and a neighboring core".
    pub fn serving_map(dims: GridDims, receivers: &[NodeId]) -> Vec<Option<NodeId>> {
        let n = dims.nodes();
        (0..n)
            .map(|node| {
                receivers
                    .iter()
                    .copied()
                    .min_by_key(|&rx| (dims.manhattan(node, rx), rx))
            })
            .collect()
    }

    /// Number of RF flits needed to broadcast a `bytes`-byte message: one
    /// DBV/length flit plus the payload flits.
    pub fn broadcast_flits(&self, bytes: u32) -> u32 {
        1 + bytes.div_ceil(self.rf_flit_bytes)
    }

    /// The cluster owning the broadcast channel at `cycle`.
    pub fn owner_at(&self, cycle: u64) -> usize {
        if self.transmitters.is_empty() {
            0
        } else {
            ((cycle / self.epoch_cycles) % self.transmitters.len() as u64) as usize
        }
    }

    /// Validates internal consistency against a grid of `nodes` routers.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids or empty transmitter/receiver sets.
    pub fn validate(&self, nodes: usize) {
        assert!(!self.transmitters.is_empty(), "at least one multicast transmitter");
        assert!(!self.receivers.is_empty(), "at least one multicast receiver");
        assert_eq!(self.cluster_of.len(), nodes);
        assert_eq!(self.serving.len(), nodes);
        for &t in &self.transmitters {
            assert!(t < nodes, "transmitter {t} out of range");
        }
        for &r in &self.receivers {
            assert!(r < nodes, "receiver {r} out of range");
        }
        assert!(self.epoch_cycles > 0, "epoch must be non-zero");
        assert!(self.rf_flit_bytes > 0);
    }
}

/// One queued or in-flight multicast transmission (internal engine state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct McTransmission {
    /// Parent record index of the multicast message.
    pub parent: u32,
    /// Total RF flits (DBV flit + payload).
    pub total_flits: u32,
    /// Next flit index to transmit.
    pub next_flit: u32,
}

/// Multicast destinations split by how the receiver delivers them.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct DeliveryPlan {
    /// Destination routers that host a tuned receiver themselves (message
    /// complete when the last broadcast flit lands).
    pub direct: Vec<NodeId>,
    /// (receiver router, destination router) pairs needing local
    /// distribution over mesh links.
    pub forwarded: Vec<(NodeId, NodeId)>,
}

pub(crate) fn plan_delivery(config: &McConfig, dests: &DestSet) -> DeliveryPlan {
    let mut plan = DeliveryPlan::default();
    for dest in dests.iter() {
        match config.serving.get(dest).copied().flatten() {
            Some(rx) if rx == dest => plan.direct.push(dest),
            Some(rx) => plan.forwarded.push((rx, dest)),
            None => plan.direct.push(dest), // unreachable via RF; treat as direct
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_map_picks_nearest() {
        let dims = GridDims::new(4, 4);
        let map = McConfig::serving_map(dims, &[0, 15]);
        assert_eq!(map[0], Some(0));
        assert_eq!(map[1], Some(0));
        assert_eq!(map[14], Some(15));
        // node 5 is distance 2 from node 0 ((1,1)) and 4 from 15 → 0
        assert_eq!(map[5], Some(0));
    }

    #[test]
    fn broadcast_flit_count() {
        let cfg = McConfig {
            transmitters: vec![0],
            cluster_of: vec![None; 16],
            receivers: vec![0],
            serving: vec![Some(0); 16],
            epoch_cycles: 100,
            rf_flit_bytes: 16,
        };
        assert_eq!(cfg.broadcast_flits(39), 1 + 3);
        assert_eq!(cfg.broadcast_flits(7), 1 + 1);
        assert_eq!(cfg.broadcast_flits(16), 1 + 1);
        assert_eq!(cfg.broadcast_flits(17), 1 + 2);
    }

    #[test]
    fn ownership_rotates() {
        let cfg = McConfig {
            transmitters: vec![1, 2, 3, 4],
            cluster_of: vec![None; 16],
            receivers: vec![0],
            serving: vec![Some(0); 16],
            epoch_cycles: 10,
            rf_flit_bytes: 16,
        };
        assert_eq!(cfg.owner_at(0), 0);
        assert_eq!(cfg.owner_at(9), 0);
        assert_eq!(cfg.owner_at(10), 1);
        assert_eq!(cfg.owner_at(39), 3);
        assert_eq!(cfg.owner_at(40), 0);
    }

    #[test]
    fn delivery_plan_splits_direct_and_forwarded() {
        let dims = GridDims::new(4, 4);
        let receivers = vec![0, 15];
        let cfg = McConfig {
            transmitters: vec![5],
            cluster_of: vec![None; 16],
            receivers: receivers.clone(),
            serving: McConfig::serving_map(dims, &receivers),
            epoch_cycles: 100,
            rf_flit_bytes: 16,
        };
        let plan = plan_delivery(&cfg, &DestSet::from_nodes([0, 1, 15]));
        assert_eq!(plan.direct, vec![0, 15]);
        assert_eq!(plan.forwarded, vec![(0, 1)]);
    }
}
