//! Router microarchitecture: virtual channels, input/output ports, and the
//! per-node injection engine.
//!
//! Routers are degree-generic: each allocates `base + 2` port slots, where
//! `base` is the fabric's per-router base-slot count (mesh routers have the
//! four N/S/E/W directions, ring stations two, ring gateways six). Slot
//! `base` is the local port to the attached core/cache/memory element and
//! slot `base + 1` the RF-I transmitter/receiver port (paper §3.2). Absent
//! ports within the base range are marked non-existent.

use crate::flit::Flit;
use std::collections::VecDeque;

/// Base slot indices of the plain mesh fabric (matching
/// `rfnoc_topology::fabric::SLOT_*`). Ring-mesh routers use the fabric's
/// own slot numbering instead.
pub(crate) const PORT_N: usize = 0;
pub(crate) const PORT_S: usize = 1;
pub(crate) const PORT_E: usize = 2;
pub(crate) const PORT_W: usize = 3;

/// Compile-time cap on per-router port count, used to size fixed scratch
/// arrays in the allocation loops (multicast partition groups, VA tree
/// children, SA input reservations). Network construction rejects fabrics
/// whose widest router would exceed it.
pub(crate) const MAX_ROUTER_PORTS: usize = 16;

/// A branch of a multicast (VCT) packet at this router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct McBranch {
    /// Output port of this branch.
    pub port: u8,
    /// Allocated downstream VC, when VA has succeeded.
    pub out_vc: Option<u16>,
    /// Packet id carried on this branch (a child packet with the subtree's
    /// destination subset, or the original packet).
    pub packet: u32,
}

/// State of one input virtual channel.
#[derive(Debug, Clone, Default)]
pub(crate) struct VcState {
    /// Buffered flits, in order.
    pub buffer: VecDeque<Flit>,
    /// Packet currently occupying this VC (claimed head → tail).
    pub cur_packet: Option<u32>,
    /// Unicast allocation: output port (valid when `allocated`).
    pub out_port: u8,
    /// Unicast allocation: downstream VC (valid when `allocated`).
    pub out_vc: u16,
    /// Whether VA has completed for the current unicast packet.
    pub allocated: bool,
    /// Multicast branches (empty for unicast packets). When non-empty the
    /// packet replicates: the front flit is copied to every branch before
    /// being retired.
    pub mc_branches: Vec<McBranch>,
    /// Bitmask over `mc_branches` recording which branches the *front* flit
    /// has already been copied to this packet-flit.
    pub mc_front_sent: u32,
    /// Whether the multicast route (partition) has been computed.
    pub mc_routed: bool,
    /// Consecutive cycles the head flit has failed VC allocation (drives
    /// the shortcut contention-avoidance detour).
    pub va_blocked: u32,
}

impl VcState {
    /// Resets allocation state after the tail flit retires.
    pub fn release(&mut self) {
        self.cur_packet = None;
        self.allocated = false;
        self.mc_branches.clear();
        self.mc_front_sent = 0;
        self.mc_routed = false;
        self.va_blocked = 0;
    }

    /// Whether every multicast branch has received the front flit.
    pub fn mc_all_sent(&self) -> bool {
        !self.mc_branches.is_empty()
            && self.mc_front_sent.count_ones() as usize == self.mc_branches.len()
            && self.mc_branches.iter().all(|b| b.out_vc.is_some())
    }
}

/// One input port: its VCs, pending link deliveries, and the upstream
/// output port to return credits to.
#[derive(Debug, Clone, Default)]
pub(crate) struct InputPort {
    /// Whether this port physically exists on this router.
    pub exists: bool,
    /// Virtual channel state.
    pub vcs: Vec<VcState>,
    /// In-flight flits from the upstream link: `(arrival_cycle, vc, flit)`,
    /// in arrival order.
    pub arrivals: VecDeque<(u64, u16, Flit)>,
    /// Upstream `(router, output port)` to credit on buffer release;
    /// `None` for the local injection port (credited via the injector).
    pub upstream: Option<(usize, u8)>,
    /// Indices of currently claimed VCs (fast scan of active channels).
    pub occupied: Vec<u16>,
}

/// Per-VC bookkeeping on an output port.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct OutVc {
    /// Packet that owns the downstream VC, until its tail is sent.
    pub owner: Option<u32>,
    /// Remaining downstream buffer credits.
    pub credits: u32,
}

/// One output port: link target, capacity, and downstream VC bookkeeping.
#[derive(Debug, Clone, Default)]
pub(crate) struct OutputPort {
    /// Whether this port physically exists on this router.
    pub exists: bool,
    /// Downstream `(router, input port)`; `None` for the ejection (local)
    /// port, which sinks flits.
    pub target: Option<(usize, u8)>,
    /// Flits this port can accept per cycle (1 for mesh/local; `16B/width`
    /// for RF-I shortcut ports).
    pub capacity: u32,
    /// Extra link-traversal cycles beyond the standard single cycle
    /// (non-zero only for shortcuts realised in buffered RC wire, which
    /// need multiple clock cycles to cross the chip — paper §5.3).
    pub extra_latency: u64,
    /// Manhattan length of the shortcut this port drives (0 for mesh and
    /// local ports); used for wire-shortcut energy accounting.
    pub shortcut_hops: u32,
    /// Whether this shortcut is realised in conventional buffered wire
    /// rather than RF-I (the paper's "Mesh Wire Shortcuts" comparison).
    pub is_wire: bool,
    /// Fail-stop fault flag: a failed port refuses *new* packet
    /// allocations while wormholes already holding a VC drain normally
    /// (credits keep flowing), so teardown is credit-safe.
    pub failed: bool,
    /// Downstream VC states.
    pub vcs: Vec<OutVc>,
    /// Round-robin cursor over `(input port, vc)` switch-allocation
    /// requests.
    pub rr: usize,
}

impl OutputPort {
    /// Whether `vc` is free for a new packet: port healthy, VC unowned and
    /// fully credited (all previously sent flits have left the downstream
    /// buffer).
    pub fn vc_free(&self, vc: usize, full_credits: u32) -> bool {
        if self.failed {
            return false;
        }
        let s = &self.vcs[vc];
        s.owner.is_none() && (self.target.is_none() || s.credits == full_credits)
    }
}

/// A packet waiting to begin injection at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingInjection {
    /// Packet table index.
    pub packet: u32,
    /// Earliest cycle injection may begin (used for VCT setup delays).
    pub ready_at: u64,
}

/// Per-flit streaming state of an injection VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct InjectStream {
    /// Packet being streamed.
    pub packet: u32,
    /// Total flits of the packet.
    pub total_flits: u32,
    /// Next flit index to send.
    pub next: u32,
}

/// The per-node injection engine: a FIFO of pending packets and per-VC
/// streaming state mirroring an upstream router's output port.
#[derive(Debug, Clone, Default)]
pub(crate) struct Injector {
    /// Waiting packets in creation order.
    pub queue: VecDeque<PendingInjection>,
    /// Streaming state per local-input VC.
    pub streams: Vec<Option<InjectStream>>,
    /// Credits per local-input VC.
    pub credits: Vec<u32>,
    /// Round-robin cursor over streaming VCs.
    pub rr: usize,
}

impl Injector {
    /// Creates an injector for `vcs` local-input virtual channels with
    /// `depth` credits each.
    pub fn new(vcs: usize, depth: u32) -> Self {
        Self {
            queue: VecDeque::new(),
            streams: vec![None; vcs],
            credits: vec![depth; vcs],
            rr: 0,
        }
    }

    /// Whether VC `vc` can accept a new packet.
    pub fn vc_free(&self, vc: usize, full_credits: u32) -> bool {
        self.streams[vc].is_none() && self.credits[vc] == full_credits
    }

    /// Total packets waiting or streaming.
    pub fn backlog(&self) -> usize {
        self.queue.len() + self.streams.iter().filter(|s| s.is_some()).count()
    }
}

/// A complete router.
#[derive(Debug, Clone, Default)]
pub(crate) struct Router {
    /// Input ports (indexed by fabric base slot, then local, then RF).
    pub inputs: Vec<InputPort>,
    /// Output ports.
    pub outputs: Vec<OutputPort>,
    /// Injection engine feeding the local input port.
    pub injector: Injector,
}

impl Router {
    /// Whether this router can make no progress until new work arrives:
    /// no buffered or in-flight flits on any input port, no claimed VCs,
    /// and an idle injector. A quiescent router is dropped from the
    /// engine's active set; deliveries and injections re-activate it.
    ///
    /// Output-side state (missing credits, owned downstream VCs) is
    /// deliberately not consulted: credits returning to an otherwise
    /// empty router update counters but enable no pipeline stage until a
    /// flit arrives, and the waiting flit keeps its *holder* active.
    pub fn quiescent(&self) -> bool {
        self.injector.queue.is_empty()
            && self.injector.streams.iter().all(Option::is_none)
            && self
                .inputs
                .iter()
                .all(|p| p.arrivals.is_empty() && p.occupied.is_empty())
    }
    /// Registers a VC as claimed (head flit arrived).
    pub fn claim_vc(&mut self, port: usize, vc: u16, packet: u32) {
        let p = &mut self.inputs[port];
        debug_assert!(p.vcs[vc as usize].cur_packet.is_none(), "VC double-claim");
        p.vcs[vc as usize].cur_packet = Some(packet);
        p.occupied.push(vc);
    }

    /// Releases a VC after its tail flit retires.
    pub fn release_vc(&mut self, port: usize, vc: u16) {
        let p = &mut self.inputs[port];
        p.vcs[vc as usize].release();
        if let Some(pos) = p.occupied.iter().position(|&v| v == vc) {
            p.occupied.swap_remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_release_clears_state() {
        let mut vc = VcState {
            cur_packet: Some(7),
            allocated: true,
            out_port: 2,
            out_vc: 3,
            mc_routed: true,
            ..Default::default()
        };
        vc.mc_branches.push(McBranch { port: 1, out_vc: Some(0), packet: 7 });
        vc.release();
        assert!(vc.cur_packet.is_none());
        assert!(!vc.allocated);
        assert!(vc.mc_branches.is_empty());
        assert!(!vc.mc_routed);
    }

    #[test]
    fn mc_all_sent_requires_every_branch() {
        let mut vc = VcState::default();
        vc.mc_branches.push(McBranch { port: 0, out_vc: Some(1), packet: 0 });
        vc.mc_branches.push(McBranch { port: 2, out_vc: None, packet: 1 });
        vc.mc_front_sent = 0b01;
        assert!(!vc.mc_all_sent());
        vc.mc_branches[1].out_vc = Some(0);
        vc.mc_front_sent = 0b11;
        assert!(vc.mc_all_sent());
    }

    #[test]
    fn out_vc_free_checks_credits() {
        let mut port = OutputPort {
            exists: true,
            target: Some((1, 0)),
            capacity: 1,
            vcs: vec![OutVc { owner: None, credits: 4 }],
            ..Default::default()
        };
        assert!(port.vc_free(0, 4));
        port.vcs[0].credits = 3;
        assert!(!port.vc_free(0, 4), "outstanding flit downstream");
        port.vcs[0].credits = 4;
        port.vcs[0].owner = Some(9);
        assert!(!port.vc_free(0, 4), "owned");
        port.vcs[0].owner = None;
        port.failed = true;
        assert!(!port.vc_free(0, 4), "failed ports refuse new packets");
    }

    #[test]
    fn injector_claim_and_backlog() {
        let mut inj = Injector::new(2, 4);
        assert!(inj.vc_free(0, 4));
        inj.streams[0] = Some(InjectStream { packet: 0, total_flits: 3, next: 0 });
        assert!(!inj.vc_free(0, 4));
        inj.queue.push_back(PendingInjection { packet: 1, ready_at: 0 });
        assert_eq!(inj.backlog(), 2);
    }

    #[test]
    fn quiescent_tracks_every_work_source() {
        let mut r = Router {
            inputs: vec![InputPort {
                exists: true,
                vcs: vec![VcState::default(); 2],
                ..InputPort::default()
            }],
            injector: Injector::new(2, 4),
            ..Router::default()
        };
        assert!(r.quiescent());
        // A pending injection is work.
        r.injector.queue.push_back(PendingInjection { packet: 0, ready_at: 9 });
        assert!(!r.quiescent());
        r.injector.queue.clear();
        // A streaming injection VC is work.
        r.injector.streams[1] = Some(InjectStream { packet: 0, total_flits: 2, next: 1 });
        assert!(!r.quiescent());
        r.injector.streams[1] = None;
        // An in-flight link delivery is work, even if not yet due.
        r.inputs[0].arrivals.push_back((100, 0, Flit { packet: 0, idx: 0, eligible: 102 }));
        assert!(!r.quiescent());
        r.inputs[0].arrivals.clear();
        // A claimed VC is work (wormhole in progress).
        r.claim_vc(0, 1, 3);
        assert!(!r.quiescent());
        r.release_vc(0, 1);
        assert!(r.quiescent());
    }

    #[test]
    fn claim_release_tracks_occupied() {
        let mut r = Router {
            inputs: vec![InputPort {
                exists: true,
                vcs: vec![VcState::default(); 4],
                arrivals: VecDeque::new(),
                upstream: None,
                occupied: Vec::new(),
            }],
            ..Router::default()
        };
        r.claim_vc(0, 2, 11);
        assert_eq!(r.inputs[0].occupied, vec![2]);
        assert_eq!(r.inputs[0].vcs[2].cur_packet, Some(11));
        r.release_vc(0, 2);
        assert!(r.inputs[0].occupied.is_empty());
        assert!(r.inputs[0].vcs[2].cur_packet.is_none());
    }
}
