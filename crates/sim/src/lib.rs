//! Cycle-level wormhole NoC simulator with an RF-interconnect overlay.
//!
//! This crate is the Garnet-equivalent substrate of the reproduction of
//! *CMP network-on-chip overlaid with multi-band RF-interconnect* (HPCA
//! 2008) and its HPCA 2009 power-reduction companion:
//!
//! * Wormhole routing with virtual channels and credit-based flow control;
//!   5-cycle pipelined routers for head flits (route computation, VC
//!   allocation, switch allocation, switch traversal, link traversal) and
//!   3 cycles for body/tail flits (§3.1).
//! * XY dimension-order routing on the baseline mesh; table-driven
//!   shortest-path routing when RF-I shortcuts are overlaid (§3.2), with
//!   eight reserved escape virtual channels restricted to conventional mesh
//!   links for deadlock freedom (§4).
//! * Single-cycle 16-byte RF-I shortcut channels attached to a sixth router
//!   port on RF-enabled routers.
//! * Three multicast architectures (§3.3, §5.2): per-destination unicast
//!   expansion, Virtual Circuit Tree multicast with in-router flit
//!   replication, and the RF-I broadcast channel with DBV-based receiver
//!   power gating.
//!
//! # Example
//!
//! Send one message across a 4×4 mesh and check it arrives:
//!
//! ```
//! use rfnoc_sim::{
//!     MessageClass, MessageSpec, Network, NetworkSpec, ScriptedWorkload, SimConfig,
//! };
//! use rfnoc_topology::GridDims;
//!
//! let mut config = SimConfig::paper_baseline();
//! config.warmup_cycles = 0;
//! config.measure_cycles = 100;
//! let spec = NetworkSpec::mesh_baseline(GridDims::new(4, 4), config);
//! let mut network = Network::new(spec);
//! let mut workload = ScriptedWorkload::new(vec![(
//!     0,
//!     MessageSpec::unicast(0, 15, MessageClass::Data),
//! )]);
//! let stats = network.run(&mut workload);
//! assert_eq!(stats.completed_messages, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bands;
mod config;
mod error;
mod fault;
mod flit;
mod network;
mod packet;
mod rfmc;
mod router;
mod stats;
mod vct;

pub use config::SimConfig;
pub use error::{ConfigError, ReconfigError, SimError};
pub use fault::{
    FaultEvent, FaultPlan, FaultRates, HealthDiagnosis, HealthReport, RecoveryConfig,
    RecoveryRecord,
};
pub use network::{
    latency_bucket, latency_bucket_bounds, shard_ranges, ChannelMask, DelayBreakdown,
    FlitEvent, FlitEventKind, FlitTraceConfig, HopRecord, IntervalSample, LedgerConfig,
    LedgerRecord, LedgerReport, MulticastMode, Network, NetworkSpec, PacketSpan,
    RoutingKind, ScriptedWorkload, TelemetryConfig, TelemetryReport, TimelineEvent,
    TimelineEventKind, Workload, HOP_ROUTE_CYCLES, HOP_SWITCH_CYCLES, LATENCY_BUCKETS,
};
pub use packet::{DestSet, Destination, MessageClass, MessageSpec};
pub use rfmc::McConfig;
pub use stats::RunStats;
pub use vct::{VctConfig, VctTable};
