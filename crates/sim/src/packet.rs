//! Messages, packets, and destination sets.

use rfnoc_topology::NodeId;

/// Message classes and their sizes in bytes (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageClass {
    /// Request between a core and a cache bank (or core and core): 7 bytes.
    Request,
    /// Data message including payload: 39 bytes.
    Data,
    /// Cache-bank ↔ memory-controller transfer: 132 bytes.
    Memory,
    /// Coherence multicast (invalidate or fill) from a cache bank to a set
    /// of cores; carries a destination bit vector in its first flit (§3.3).
    Multicast,
}

impl MessageClass {
    /// Payload size in bytes for this class (multicasts use the data size).
    pub fn bytes(self) -> u32 {
        match self {
            MessageClass::Request => 7,
            MessageClass::Data => 39,
            MessageClass::Memory => 132,
            MessageClass::Multicast => 39,
        }
    }
}

/// A set of destination routers, stored as a bit vector over node ids.
///
/// The paper's DBV is 64 bits over cores; our networks have at most 128
/// routers, so a `u128` indexed by router id suffices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DestSet(u128);

impl DestSet {
    /// The empty destination set.
    pub fn empty() -> Self {
        Self(0)
    }

    /// A set containing the given routers.
    ///
    /// # Panics
    ///
    /// Panics if any id is ≥ 128.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        let mut bits = 0u128;
        for n in nodes {
            assert!(n < 128, "router id {n} exceeds DBV capacity");
            bits |= 1 << n;
        }
        Self(bits)
    }

    /// Adds a router to the set.
    ///
    /// # Panics
    ///
    /// Panics if `node >= 128`.
    pub fn insert(&mut self, node: NodeId) {
        assert!(node < 128, "router id {node} exceeds DBV capacity");
        self.0 |= 1 << node;
    }

    /// Removes a router from the set.
    pub fn remove(&mut self, node: NodeId) {
        if node < 128 {
            self.0 &= !(1 << node);
        }
    }

    /// Whether `node` is in the set.
    pub fn contains(&self, node: NodeId) -> bool {
        node < 128 && self.0 & (1 << node) != 0
    }

    /// Number of destinations.
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterator over the router ids in the set, ascending.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        let bits = self.0;
        (0..128usize).filter(move |i| bits & (1 << i) != 0)
    }

    /// Raw bit representation.
    pub fn bits(&self) -> u128 {
        self.0
    }
}

impl FromIterator<NodeId> for DestSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        Self::from_nodes(iter)
    }
}

/// Destination of a message: a single router or a multicast set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Destination {
    /// Ordinary unicast to one router.
    Unicast(NodeId),
    /// Multicast to a set of core routers (paper §3.3).
    Multicast(DestSet),
}

/// A message to inject into the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MessageSpec {
    /// Source router.
    pub src: NodeId,
    /// Destination router or multicast set.
    pub dest: Destination,
    /// Message class (determines size).
    pub class: MessageClass,
}

impl MessageSpec {
    /// A unicast message of the given class.
    pub fn unicast(src: NodeId, dst: NodeId, class: MessageClass) -> Self {
        Self { src, dest: Destination::Unicast(dst), class }
    }

    /// A coherence multicast from a cache-bank router to a set of core
    /// routers.
    pub fn multicast(src: NodeId, dests: DestSet) -> Self {
        Self { src, dest: Destination::Multicast(dests), class: MessageClass::Multicast }
    }

    /// Payload size in bytes.
    pub fn bytes(&self) -> u32 {
        self.class.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_sizes_match_paper() {
        assert_eq!(MessageClass::Request.bytes(), 7);
        assert_eq!(MessageClass::Data.bytes(), 39);
        assert_eq!(MessageClass::Memory.bytes(), 132);
    }

    #[test]
    fn dest_set_roundtrip() {
        let set = DestSet::from_nodes([3, 77, 99]);
        assert_eq!(set.len(), 3);
        assert!(set.contains(77));
        assert!(!set.contains(4));
        let collected: Vec<NodeId> = set.iter().collect();
        assert_eq!(collected, vec![3, 77, 99]);
    }

    #[test]
    fn dest_set_insert_remove() {
        let mut set = DestSet::empty();
        assert!(set.is_empty());
        set.insert(5);
        set.insert(5);
        assert_eq!(set.len(), 1);
        set.remove(5);
        assert!(set.is_empty());
    }

    #[test]
    #[should_panic(expected = "DBV capacity")]
    fn oversized_id_rejected() {
        DestSet::from_nodes([128]);
    }
}
