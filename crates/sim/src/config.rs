//! Simulator configuration (paper Figure 5a parameters).

use crate::error::ConfigError;
use crate::fault::RecoveryConfig;
use crate::network::ledger::LedgerConfig;
use crate::network::telemetry::{FlitTraceConfig, TelemetryConfig};
use rfnoc_power::LinkWidth;

/// Microarchitectural configuration of the simulated network.
///
/// Defaults follow the paper's §3.1/§4 description: wormhole routing,
/// 5-cycle pipelined routers (head flits; 3 cycles for body/tail), a 2 GHz
/// network clock, eight reserved escape virtual channels restricted to
/// conventional mesh links for deadlock avoidance, and 16B baseline links.
///
/// # Example
///
/// ```
/// use rfnoc_sim::SimConfig;
/// let cfg = SimConfig::paper_baseline();
/// assert_eq!(cfg.vcs_escape, 8);
/// assert_eq!(cfg.total_vcs(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Conventional mesh link width (bytes per network cycle).
    pub link_width: LinkWidth,
    /// Adaptive virtual channels per input port (may use RF-I shortcuts).
    pub vcs_adaptive: usize,
    /// Escape virtual channels per input port (XY routing over mesh links
    /// only — the paper's "eight reserved virtual channels").
    pub vcs_escape: usize,
    /// Flit buffer depth per virtual channel.
    pub buffer_depth: usize,
    /// Aggregate RF-I shortcut channel width in bytes (always 16B in the
    /// paper, independent of the mesh link width).
    pub rf_channel_bytes: u32,
    /// Warmup cycles before measurement starts.
    pub warmup_cycles: u64,
    /// Measurement window length in cycles.
    pub measure_cycles: u64,
    /// Maximum extra cycles to drain in-flight measured packets.
    pub drain_cycles: u64,
    /// One-time routing-table reconfiguration cost in cycles (99 in the
    /// paper: one write per router, all updated in parallel). Charged to
    /// the run's cycle count when a reconfiguration is performed.
    pub reconfig_cycles: u64,
    /// Flits the local injection/ejection interface moves per *network*
    /// cycle. The paper's cores and cache banks run at 4 GHz against the
    /// 2 GHz interconnect (§3.1), so the local port drains and fills at
    /// twice the network rate: 2.
    pub local_port_speedup: u32,
    /// Flit-level debug trace configuration (off by default). See
    /// `Network::flit_trace` and `Network::flit_trace_dropped`.
    pub flit_trace: FlitTraceConfig,
    /// Telemetry subsystem configuration: `Some` enables interval-sampled
    /// counters, packet spans, and the event timeline (returned through
    /// `RunStats::telemetry`); `None` (the default) keeps the engine
    /// telemetry-free — provably bit-identical and with no measurable
    /// overhead.
    pub telemetry: Option<TelemetryConfig>,
    /// Collect per-(source, destination) message counts during the run —
    /// the "event counters in our network" the paper's application-specific
    /// selection relies on (§3.2.2). Off by default (memory/time cost).
    pub collect_pair_counts: bool,
    /// Adaptive routing around congested shortcuts: when the shortest
    /// path uses an RF-I port whose virtual channels are all busy, packets
    /// may take the XY mesh route instead of waiting. This is the
    /// contention-avoidance technique of the HPCA 2008 paper ("they
    /// explored the potential of adaptive-routing techniques to avoid
    /// bottlenecks resulting from contention for the shortcuts", §2).
    pub adaptive_shortcut_routing: bool,
    /// Forward-progress watchdog window: when measured packets are
    /// outstanding and no switch grant happens anywhere in the network for
    /// this many cycles, `Network::run` stops early and reports a
    /// structured `HealthReport` instead of spinning to the drain limit.
    /// 0 disables the watchdog. Must exceed `reconfig_cycles` (a table
    /// rewrite legitimately stalls injection that long).
    pub watchdog_cycles: u64,
    /// Cycles to recover a flit corrupted in flight by a transient link
    /// glitch: detection at the receiver plus retransmission from the
    /// upstream buffer. The glitched flit (and the link behind it) is
    /// delayed by this much; credits are unaffected.
    pub link_retry_cycles: u64,
    /// Per-fault recovery-SLO tracking: `Some` opens a
    /// [`crate::RecoveryRecord`] for every applied fault (drain, rewrite,
    /// and latency re-convergence timings, returned through
    /// `RunStats::recovery`); `None` (the default) keeps the engine
    /// free of the observer — like telemetry, enabling it never changes
    /// simulated behaviour.
    pub recovery: Option<RecoveryConfig>,
    /// Run-ledger configuration: `Some` streams structured observability
    /// records — periodic heartbeats, per-shard sweep metrics when
    /// `threads > 1`, and mirrored timeline events — returned through
    /// `RunStats::ledger`; `None` (the default) keeps the engine
    /// ledger-free. Like telemetry, enabling it never changes simulated
    /// behaviour (bit-identical golden hashes, on or off).
    pub ledger: Option<LedgerConfig>,
    /// Worker threads stepping the router sweep (the sharded cycle
    /// engine). `1` (the default) runs the classic serial sweep; `N > 1`
    /// partitions the fabric into `N` contiguous router shards stepped
    /// concurrently, with cross-shard flits, credits, and observer
    /// channels merged in shard order at the cycle boundary — proven
    /// bit-identical to the serial engine for every thread count. The
    /// effective count is clamped to the router count, and VCT tree
    /// multicast (which allocates packets mid-sweep) falls back to 1.
    pub threads: usize,
}

impl SimConfig {
    /// The paper's baseline configuration at the given link width.
    pub fn paper_baseline() -> Self {
        Self {
            link_width: LinkWidth::B16,
            vcs_adaptive: 4,
            vcs_escape: 8,
            buffer_depth: 4,
            rf_channel_bytes: 16,
            warmup_cycles: 10_000,
            measure_cycles: 100_000,
            drain_cycles: 50_000,
            reconfig_cycles: 99,
            local_port_speedup: 2,
            flit_trace: FlitTraceConfig::disabled(),
            telemetry: None,
            collect_pair_counts: false,
            adaptive_shortcut_routing: true,
            watchdog_cycles: 10_000,
            link_retry_cycles: 6,
            recovery: None,
            ledger: None,
            threads: 1,
        }
    }

    /// Total virtual channels per input port.
    pub fn total_vcs(&self) -> usize {
        self.vcs_adaptive + self.vcs_escape
    }

    /// Flits an RF-I shortcut can carry per cycle at the configured mesh
    /// flit size (the 16B RF channel carries multiple narrow flits when the
    /// mesh is reduced to 8B/4B).
    pub fn rf_flits_per_cycle(&self) -> u32 {
        (self.rf_channel_bytes / self.link_width.bytes()).max(1)
    }

    /// Returns a copy with a different link width.
    #[must_use]
    pub fn with_link_width(mut self, width: LinkWidth) -> Self {
        self.link_width = width;
        self
    }

    /// Returns a copy with flit tracing capped at `limit` events.
    #[deprecated(
        since = "0.5.0",
        note = "set `flit_trace = FlitTraceConfig::capped(limit)` instead; \
                the bare cap truncated silently"
    )]
    #[must_use]
    pub fn with_flit_trace_limit(mut self, limit: usize) -> Self {
        self.flit_trace = FlitTraceConfig::capped(limit);
        self
    }

    /// Returns a copy with telemetry enabled at the given configuration.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Returns a copy with per-fault recovery tracking enabled.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Returns a copy with the run ledger enabled at the given
    /// configuration.
    #[must_use]
    pub fn with_ledger(mut self, ledger: LedgerConfig) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// Returns a copy stepping the router sweep on `threads` worker
    /// threads (the sharded cycle engine; bit-identical at any count).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Validates internal consistency, rejecting degenerate parameters
    /// (zero VCs, zero buffers, an empty measurement window, or a watchdog
    /// window a routing-table rewrite would trip).
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.vcs_adaptive + self.vcs_escape == 0 {
            return Err(ConfigError::NoVcs);
        }
        if self.vcs_escape == 0 {
            return Err(ConfigError::NoEscapeVcs);
        }
        if self.buffer_depth == 0 {
            return Err(ConfigError::ZeroBufferDepth);
        }
        if self.measure_cycles == 0 {
            return Err(ConfigError::EmptyMeasureWindow);
        }
        if self.local_port_speedup < 1 {
            return Err(ConfigError::NoLocalBandwidth);
        }
        if self.threads == 0 {
            return Err(ConfigError::ZeroSimThreads);
        }
        let watchdog_minimum = self.reconfig_cycles + 1;
        if self.watchdog_cycles != 0 && self.watchdog_cycles < watchdog_minimum {
            return Err(ConfigError::WatchdogTooTight {
                watchdog: self.watchdog_cycles,
                minimum: watchdog_minimum,
            });
        }
        if let Some(t) = &self.telemetry {
            if t.interval == 0 {
                return Err(ConfigError::ZeroTelemetryInterval);
            }
        }
        if let Some(l) = &self.ledger {
            if l.interval == 0 {
                return Err(ConfigError::ZeroLedgerInterval);
            }
        }
        if let Some(r) = &self.recovery {
            if r.window == 0 {
                return Err(ConfigError::ZeroRecoveryWindow);
            }
            if r.epsilon <= 0.0 {
                return Err(ConfigError::NonPositiveRecoveryEpsilon);
            }
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rf_carries_multiple_narrow_flits() {
        let cfg = SimConfig::paper_baseline();
        assert_eq!(cfg.rf_flits_per_cycle(), 1);
        assert_eq!(cfg.clone().with_link_width(LinkWidth::B8).rf_flits_per_cycle(), 2);
        assert_eq!(cfg.with_link_width(LinkWidth::B4).rf_flits_per_cycle(), 4);
    }

    #[test]
    fn default_validates() {
        assert_eq!(SimConfig::default().validate(), Ok(()));
    }

    #[test]
    fn zero_escape_vcs_rejected() {
        let mut cfg = SimConfig::paper_baseline();
        cfg.vcs_escape = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoEscapeVcs));
    }

    #[test]
    fn zero_total_vcs_rejected() {
        let mut cfg = SimConfig::paper_baseline();
        cfg.vcs_adaptive = 0;
        cfg.vcs_escape = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoVcs));
    }

    #[test]
    fn zero_buffer_depth_rejected() {
        let mut cfg = SimConfig::paper_baseline();
        cfg.buffer_depth = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroBufferDepth));
    }

    #[test]
    fn empty_measure_window_rejected() {
        let mut cfg = SimConfig::paper_baseline();
        cfg.measure_cycles = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::EmptyMeasureWindow));
    }

    #[test]
    fn zero_local_speedup_rejected() {
        let mut cfg = SimConfig::paper_baseline();
        cfg.local_port_speedup = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoLocalBandwidth));
    }

    #[test]
    fn zero_threads_rejected() {
        let cfg = SimConfig::paper_baseline().with_threads(0);
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroSimThreads));
        assert_eq!(SimConfig::paper_baseline().with_threads(8).validate(), Ok(()));
    }

    #[test]
    fn tight_watchdog_rejected_but_disabled_allowed() {
        let mut cfg = SimConfig::paper_baseline();
        cfg.watchdog_cycles = cfg.reconfig_cycles; // would trip on a rewrite
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::WatchdogTooTight {
                watchdog: cfg.reconfig_cycles,
                minimum: cfg.reconfig_cycles + 1,
            })
        );
        cfg.watchdog_cycles = 0;
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn zero_telemetry_interval_rejected() {
        let mut cfg = SimConfig::paper_baseline();
        cfg.telemetry = Some(TelemetryConfig { interval: 0, ..TelemetryConfig::every(1) });
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroTelemetryInterval));
        cfg.telemetry = Some(TelemetryConfig::every(1_000));
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn zero_ledger_interval_rejected() {
        let mut cfg = SimConfig::paper_baseline();
        cfg.ledger = Some(LedgerConfig { interval: 0 });
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroLedgerInterval));
        cfg = cfg.with_ledger(LedgerConfig::every(1_000));
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn degenerate_recovery_config_rejected() {
        let mut cfg = SimConfig::paper_baseline();
        cfg.recovery = Some(RecoveryConfig { window: 0, ..RecoveryConfig::slo() });
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroRecoveryWindow));
        cfg.recovery = Some(RecoveryConfig { epsilon: 0.0, ..RecoveryConfig::slo() });
        assert_eq!(cfg.validate(), Err(ConfigError::NonPositiveRecoveryEpsilon));
        cfg = cfg.with_recovery(RecoveryConfig::slo());
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_flit_trace_builder_maps_to_config() {
        let cfg = SimConfig::paper_baseline().with_flit_trace_limit(42);
        assert_eq!(cfg.flit_trace, FlitTraceConfig::capped(42));
    }
}
