//! Deterministic fault injection for the RF-I overlaid NoC.
//!
//! A [`FaultPlan`] is a seed-driven schedule of [`FaultEvent`]s applied
//! inside [`crate::Network::step`]. Faults follow fail-stop semantics at
//! packet granularity: a failed port refuses *new* packet allocations while
//! wormholes already holding the port finish normally, so credit-based flow
//! control stays consistent. Failed RF-I shortcuts are torn out through the
//! same drain → retune → table-rewrite state machine as a planned
//! reconfiguration (paper §3.2), degrading traffic onto the XY mesh; failed
//! mesh links trigger a detour-table rebuild over the surviving links.
//! Transient link glitches model flit corruption detected at the receiver
//! and retransmitted from the upstream buffer: the in-flight flit (and the
//! link behind it) is delayed by [`crate::SimConfig::link_retry_cycles`],
//! leaving credits untouched.

use crate::error::ConfigError;
use rfnoc_topology::{FabricSpec, Shortcut};

/// One scheduled fault or repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The RF-I transmitter at router `src` fails. Its shortcut drains and
    /// is removed from the routing tables; the transmitter stays failed
    /// (ignored by later retunes) until a [`FaultEvent::ShortcutUp`] at the
    /// same router.
    ShortcutDown {
        /// Router whose RF transmitter fails.
        src: usize,
    },
    /// The whole RF band fails: every active shortcut is torn down at once
    /// and all transmitters are marked failed.
    BandDown,
    /// The RF transmitter at `src` is repaired and retuned to reach `dst`.
    ShortcutUp {
        /// Router whose RF transmitter is repaired.
        src: usize,
        /// Receiver the repaired transmitter is tuned to.
        dst: usize,
    },
    /// The mesh link between adjacent routers `a` and `b` fails in both
    /// directions; detour tables route around it.
    MeshLinkDown {
        /// One endpoint.
        a: usize,
        /// The adjacent endpoint.
        b: usize,
    },
    /// The mesh link between `a` and `b` is repaired.
    MeshLinkUp {
        /// One endpoint.
        a: usize,
        /// The adjacent endpoint.
        b: usize,
    },
    /// A transient glitch corrupts the flit in flight on the link from `a`
    /// to `b` (mesh or RF); the flit is dropped at the receiver and
    /// retransmitted from the sender's buffer after
    /// [`crate::SimConfig::link_retry_cycles`]. No effect on an idle link.
    LinkGlitch {
        /// Sending router.
        a: usize,
        /// Receiving router.
        b: usize,
    },
}

impl FaultEvent {
    /// Whether this event touches only RF-I resources (never the mesh).
    pub fn rf_only(&self) -> bool {
        matches!(
            self,
            Self::ShortcutDown { .. } | Self::BandDown | Self::ShortcutUp { .. }
        )
    }
}

/// Expected fault counts over a generation window, used by
/// [`FaultPlan::random`]. Each field is an *expected number of events*
/// across the window (fractions round to the nearest count).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Expected permanent RF shortcut (transmitter) failures.
    pub shortcut_failures: f64,
    /// Expected permanent mesh link failures. Links are sampled so the
    /// surviving mesh stays connected.
    pub mesh_link_failures: f64,
    /// Expected transient link glitches.
    pub glitches: f64,
    /// When set, every permanent failure is repaired this many cycles
    /// after it strikes.
    pub repair_after: Option<u64>,
}

impl FaultRates {
    /// Scales every expected count by `factor` (repair delay unchanged).
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        Self {
            shortcut_failures: self.shortcut_failures * factor,
            mesh_link_failures: self.mesh_link_failures * factor,
            glitches: self.glitches * factor,
            repair_after: self.repair_after,
        }
    }
}

/// A deterministic schedule of fault events, sorted by cycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<(u64, FaultEvent)>,
    pos: usize,
}

impl FaultPlan {
    /// A plan from `(cycle, event)` pairs; sorted by cycle internally
    /// (stable, so same-cycle events keep their given order).
    pub fn new(mut events: Vec<(u64, FaultEvent)>) -> Self {
        events.sort_by_key(|(c, _)| *c);
        Self { events, pos: 0 }
    }

    /// A plan from `(cycle, event)` pairs, validated against a base
    /// `fabric`. Unlike [`FaultPlan::new`] (which trusts its caller and
    /// lets the network silently ignore impossible events at apply time),
    /// this rejects plans that could only no-op:
    ///
    /// * any event naming a router outside the fabric;
    /// * [`FaultEvent::MeshLinkDown`]/[`FaultEvent::MeshLinkUp`] between
    ///   routers with no base-fabric link (mesh neighbours on a mesh, ring
    ///   or gateway-mesh neighbours on a ring-mesh);
    /// * a repair ([`FaultEvent::ShortcutUp`], [`FaultEvent::MeshLinkUp`])
    ///   firing before any failure of the same resource (a
    ///   [`FaultEvent::BandDown`] counts as failing every transmitter).
    ///
    /// # Errors
    ///
    /// Returns the first violated [`ConfigError`] in firing order.
    pub fn validated(
        events: Vec<(u64, FaultEvent)>,
        fabric: &FabricSpec,
    ) -> Result<Self, ConfigError> {
        let plan = Self::new(events);
        let nodes = fabric.nodes();
        let check_router = |router: usize| {
            if router >= nodes {
                Err(ConfigError::FaultRouterOutOfRange { router, nodes })
            } else {
                Ok(())
            }
        };
        let mut tx_failed = vec![false; nodes];
        let mut band_down_seen = false;
        let mut links_failed: Vec<(usize, usize)> = Vec::new();
        for &(cycle, event) in &plan.events {
            match event {
                FaultEvent::ShortcutDown { src } => {
                    check_router(src)?;
                    tx_failed[src] = true;
                }
                FaultEvent::BandDown => band_down_seen = true,
                FaultEvent::ShortcutUp { src, dst } => {
                    check_router(src)?;
                    check_router(dst)?;
                    if !tx_failed[src] && !band_down_seen {
                        return Err(ConfigError::FaultRepairBeforeFail { cycle });
                    }
                    tx_failed[src] = false;
                }
                FaultEvent::MeshLinkDown { a, b } => {
                    check_router(a)?;
                    check_router(b)?;
                    if fabric.port_between(a, b).is_none() {
                        return Err(ConfigError::FaultLinkNotAdjacent { a, b });
                    }
                    let key = (a.min(b), a.max(b));
                    if !links_failed.contains(&key) {
                        links_failed.push(key);
                    }
                }
                FaultEvent::MeshLinkUp { a, b } => {
                    check_router(a)?;
                    check_router(b)?;
                    if fabric.port_between(a, b).is_none() {
                        return Err(ConfigError::FaultLinkNotAdjacent { a, b });
                    }
                    let key = (a.min(b), a.max(b));
                    let Some(idx) = links_failed.iter().position(|&l| l == key) else {
                        return Err(ConfigError::FaultRepairBeforeFail { cycle });
                    };
                    links_failed.swap_remove(idx);
                }
                // Glitches may strike mesh or RF links, so adjacency is
                // not required; only the ids must name routers.
                FaultEvent::LinkGlitch { a, b } => {
                    check_router(a)?;
                    check_router(b)?;
                }
            }
        }
        Ok(plan)
    }

    /// The scheduled events, in firing order.
    pub fn events(&self) -> &[(u64, FaultEvent)] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether every event touches only RF-I resources — such a plan can
    /// never break packet delivery, only degrade it to the mesh.
    pub fn rf_only(&self) -> bool {
        self.events.iter().all(|(_, e)| e.rf_only())
    }

    /// Whether every scheduled event has already fired.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.events.len()
    }

    /// Appends the events due at or before `cycle` to `out` and advances
    /// past them.
    pub fn events_at(&mut self, cycle: u64, out: &mut Vec<FaultEvent>) {
        while self.pos < self.events.len() && self.events[self.pos].0 <= cycle {
            out.push(self.events[self.pos].1);
            self.pos += 1;
        }
    }

    /// Generates a deterministic random plan for a base `fabric` carrying
    /// `shortcuts`: the same `(seed, rates, window)` always produces the
    /// same schedule. Shortcut failures strike distinct live transmitters;
    /// base-link failures are drawn from the fabric's own adjacency (mesh
    /// links on a mesh, ring and gateway-mesh links on a ring-mesh) and
    /// sampled rejection-style so the surviving fabric stays connected (a
    /// disconnected fabric would make delivery impossible rather than
    /// degraded); glitches strike uniformly random directed base links.
    pub fn random(
        seed: u64,
        fabric: &FabricSpec,
        shortcuts: &[Shortcut],
        rates: FaultRates,
        window: std::ops::Range<u64>,
    ) -> Self {
        let mut rng = SplitMix64::new(seed);
        let span = window.end.saturating_sub(window.start).max(1);
        let mut events: Vec<(u64, FaultEvent)> = Vec::new();
        let push_with_repair = |t: u64, down: FaultEvent, up: FaultEvent, ev: &mut Vec<(u64, FaultEvent)>| {
            ev.push((t, down));
            if let Some(delay) = rates.repair_after {
                ev.push((t + delay, up));
            }
        };

        // Shortcut (transmitter) failures: distinct live shortcuts.
        let mut alive: Vec<Shortcut> = shortcuts.to_vec();
        let n_shortcut = round_count(rates.shortcut_failures).min(alive.len());
        for _ in 0..n_shortcut {
            let t = window.start + rng.below(span);
            let idx = rng.below(alive.len() as u64) as usize;
            let s = alive.swap_remove(idx);
            push_with_repair(
                t,
                FaultEvent::ShortcutDown { src: s.src },
                FaultEvent::ShortcutUp { src: s.src, dst: s.dst },
                &mut events,
            );
        }

        // Base link failures: distinct undirected links, surviving fabric
        // kept connected (bounded rejection sampling).
        let all_links = undirected_fabric_links(fabric);
        let n_mesh = round_count(rates.mesh_link_failures).min(all_links.len());
        let mut failed: Vec<(usize, usize)> = Vec::new();
        let mut attempts = 0usize;
        while failed.len() < n_mesh && attempts < n_mesh * 64 + 64 {
            attempts += 1;
            let (a, b) = all_links[rng.below(all_links.len() as u64) as usize];
            if failed.contains(&(a, b)) {
                continue;
            }
            failed.push((a, b));
            if !fabric_connected(fabric, &failed) {
                failed.pop();
                continue;
            }
            let t = window.start + rng.below(span);
            push_with_repair(
                t,
                FaultEvent::MeshLinkDown { a, b },
                FaultEvent::MeshLinkUp { a, b },
                &mut events,
            );
        }

        // Transient glitches: uniform over directed base links.
        for _ in 0..round_count(rates.glitches) {
            let t = window.start + rng.below(span);
            let (a, b) = all_links[rng.below(all_links.len() as u64) as usize];
            let (a, b) = if rng.below(2) == 0 { (a, b) } else { (b, a) };
            events.push((t, FaultEvent::LinkGlitch { a, b }));
        }

        Self::new(events)
    }

    /// Generates a deterministic *correlated* fault plan — the storm
    /// shapes a resilience campaign throws at the network, as opposed to
    /// the independent events of [`FaultPlan::random`]:
    ///
    /// 1. **Regional mesh-link storm** — a random region of the grid
    ///    loses several mesh links within a ~200-cycle burst (surviving
    ///    mesh kept connected); the region heals after a hold period.
    /// 2. **Glitch burst** — a cluster of transient glitches whose count
    ///    scales with both `intensity` and `offered_load` (a loaded link
    ///    has more flits in flight to corrupt).
    /// 3. **Band-down-during-retune race** — one shortcut fails, and
    ///    while its drain/retune is still in flight the whole band goes
    ///    down, exercising the pending-target path of the reconfiguration
    ///    state machine; the band is repaired later in the window.
    ///
    /// `intensity` scales event counts (0 disables the plan entirely);
    /// `offered_load` is the workload's injection rate relative to
    /// nominal (1.0 = nominal). Same arguments, same plan.
    pub fn correlated(
        seed: u64,
        fabric: &FabricSpec,
        shortcuts: &[Shortcut],
        intensity: f64,
        offered_load: f64,
        window: std::ops::Range<u64>,
    ) -> Self {
        if intensity <= 0.0 {
            return Self::default();
        }
        let dims = fabric.dims();
        let mut rng = SplitMix64::new(seed ^ 0xC0_44E1A7ED);
        let span = window.end.saturating_sub(window.start).max(8);
        let mut events: Vec<(u64, FaultEvent)> = Vec::new();

        // 1. Regional storm in the first half of the window.
        let storm_start = window.start + span / 8 + rng.below(span / 8);
        let storm_burst = 200.min(span / 4).max(1);
        let storm_hold = (span / 4).clamp(200, 5_000);
        let center = dims.coord_of(rng.below(dims.nodes() as u64) as usize);
        let radius = (1.0 + intensity).round() as i64;
        let in_region = |r: usize| {
            let c = dims.coord_of(r);
            (i64::from(c.x) - i64::from(center.x)).abs() <= radius
                && (i64::from(c.y) - i64::from(center.y)).abs() <= radius
        };
        let region_links: Vec<(usize, usize)> = undirected_fabric_links(fabric)
            .into_iter()
            .filter(|&(a, b)| in_region(a) && in_region(b))
            .collect();
        let n_storm = round_count(2.0 * intensity).min(region_links.len());
        let mut failed: Vec<(usize, usize)> = Vec::new();
        let mut attempts = 0usize;
        while failed.len() < n_storm && attempts < n_storm * 64 + 64 {
            attempts += 1;
            let (a, b) = region_links[rng.below(region_links.len() as u64) as usize];
            if failed.contains(&(a, b)) {
                continue;
            }
            failed.push((a, b));
            if !fabric_connected(fabric, &failed) {
                failed.pop();
                continue;
            }
            let t = storm_start + rng.below(storm_burst);
            events.push((t, FaultEvent::MeshLinkDown { a, b }));
            events.push((t + storm_hold, FaultEvent::MeshLinkUp { a, b }));
        }

        // 2. Glitch burst shortly after the storm peaks, scaled by load:
        // glitches only matter when flits are in flight.
        let burst_start = storm_start + storm_burst + rng.below(span / 8 + 1);
        let burst_span = 300.min(span / 4).max(1);
        let all_links = undirected_fabric_links(fabric);
        let n_glitch = round_count(6.0 * intensity * offered_load.max(0.25));
        for _ in 0..n_glitch {
            let t = burst_start + rng.below(burst_span);
            let (a, b) = all_links[rng.below(all_links.len() as u64) as usize];
            let (a, b) = if rng.below(2) == 0 { (a, b) } else { (b, a) };
            events.push((t, FaultEvent::LinkGlitch { a, b }));
        }

        // 3. Band-down-during-retune race in the second half, repaired
        // well before the window closes so convergence is observable.
        if !shortcuts.is_empty() {
            let race_t = window.start + span / 2 + rng.below(span / 8 + 1);
            let victim = shortcuts[rng.below(shortcuts.len() as u64) as usize];
            events.push((race_t, FaultEvent::ShortcutDown { src: victim.src }));
            // 40 cycles later the drain (or the 99-cycle table rewrite)
            // of the victim's retune is still in flight.
            events.push((race_t + 40, FaultEvent::BandDown));
            let repair_t = race_t + 40 + (span / 8).clamp(500, 10_000);
            for s in shortcuts {
                events.push((repair_t, FaultEvent::ShortcutUp { src: s.src, dst: s.dst }));
            }
        }

        Self::new(events)
    }
}

/// Why a run was flagged unhealthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthDiagnosis {
    /// No switch grant anywhere in the network for the watchdog window
    /// while measured packets were outstanding: a true deadlock (or a hang
    /// on a torn-down resource).
    Deadlock,
    /// Grants kept flowing but no measured message completed for an
    /// extended window: packets are moving without making progress.
    Livelock,
    /// The surviving mesh is disconnected — some destinations are
    /// unreachable, so outstanding traffic can never complete.
    Partitioned,
}

impl std::fmt::Display for HealthDiagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Deadlock => write!(f, "deadlock"),
            Self::Livelock => write!(f, "livelock"),
            Self::Partitioned => write!(f, "partitioned"),
        }
    }
}

/// Structured report produced when the watchdog flags a hang instead of
/// letting [`crate::Network::run`] spin silently to the drain limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthReport {
    /// What went wrong.
    pub diagnosis: HealthDiagnosis,
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Measured messages still outstanding.
    pub outstanding: u64,
    /// Cycles since the last switch grant (or injection) anywhere.
    pub stalled_for: u64,
    /// Cycles since the last measured message completed (or since the
    /// network last went busy).
    pub since_completion: u64,
    /// Fault recoveries still open (fault applied, windowed latency not
    /// yet re-converged) when the report was taken. Always 0 unless
    /// recovery tracking ([`crate::SimConfig::recovery`]) is enabled.
    pub recovering_faults: u32,
}

impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at cycle {}: {} messages outstanding, no grant for {} cycles, \
             no completion for {} cycles",
            self.diagnosis, self.cycle, self.outstanding, self.stalled_for, self.since_completion
        )?;
        if self.recovering_faults > 0 {
            write!(f, ", {} fault recoveries open", self.recovering_faults)?;
        }
        Ok(())
    }
}

/// Opt-in recovery-SLO tracking ([`crate::SimConfig::recovery`]).
///
/// When enabled, every applied fault opens a [`RecoveryRecord`] that
/// measures how long the network takes to re-converge: the windowed mean
/// message latency (over the last `window` completions) must return to
/// within `1 + epsilon` times its pre-fault value. Purely observational —
/// enabling it changes no routing or timing decision, so the simulated
/// behaviour stays bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Completions per sliding window used to estimate the mean latency.
    pub window: u32,
    /// Relative tolerance: converged once the windowed mean is at most
    /// `(1 + epsilon) *` the pre-fault baseline.
    pub epsilon: f64,
}

impl RecoveryConfig {
    /// The default campaign SLO: a 64-completion window within 10% of the
    /// pre-fault mean.
    pub const fn slo() -> Self {
        Self { window: 64, epsilon: 0.10 }
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self::slo()
    }
}

/// Recovery timings of one applied fault (see [`RecoveryConfig`]).
///
/// Cycle spans are `None` when the phase never completed within the run
/// (or does not apply: mesh faults rebuild detour tables in place and
/// have no drain/rewrite phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// The fault this record measures.
    pub event: FaultEvent,
    /// Cycle the fault was applied.
    pub fault_cycle: u64,
    /// Fault → RF ports retuned (in-flight wormholes drained), for faults
    /// that trigger the drain/retune machinery.
    pub drain_cycles: Option<u64>,
    /// Retune applied → routing-table rewrite complete.
    pub rewrite_cycles: Option<u64>,
    /// Fault → windowed mean latency back within tolerance of the
    /// pre-fault baseline. `None` means the run ended unconverged.
    pub convergence_cycles: Option<u64>,
}

impl RecoveryRecord {
    /// Whether the latency SLO was met within the run.
    pub fn converged(&self) -> bool {
        self.convergence_cycles.is_some()
    }
}

impl std::fmt::Display for RecoveryRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let opt = |v: Option<u64>| match v {
            Some(c) => c.to_string(),
            None => "-".to_string(),
        };
        write!(
            f,
            "{:?} @{}: drain {}, rewrite {}, converged {}",
            self.event,
            self.fault_cycle,
            opt(self.drain_cycles),
            opt(self.rewrite_cycles),
            opt(self.convergence_cycles),
        )
    }
}

fn round_count(expected: f64) -> usize {
    if expected <= 0.0 { 0 } else { expected.round() as usize }
}

/// All undirected base-fabric links, as `(lower, higher)` node pairs in
/// ascending per-router order. On a mesh this reproduces the historical
/// mesh-only enumeration exactly (`(r, r+1)` before `(r, r+width)`), so
/// seeded plans over mesh fabrics are unchanged by the fabric-generic
/// generator.
fn undirected_fabric_links(fabric: &FabricSpec) -> Vec<(usize, usize)> {
    let n = fabric.nodes();
    let mut links = Vec::new();
    for r in 0..n {
        let mut higher: Vec<usize> =
            fabric.neighbors(r).into_iter().filter(|&nb| nb > r).collect();
        higher.sort_unstable();
        links.extend(higher.into_iter().map(|nb| (r, nb)));
    }
    links
}

/// Whether the base fabric minus `failed` undirected links is connected.
fn fabric_connected(fabric: &FabricSpec, failed: &[(usize, usize)]) -> bool {
    let n = fabric.nodes();
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::from([0usize]);
    seen[0] = true;
    let live = |a: usize, b: usize| {
        let key = (a.min(b), a.max(b));
        !failed.contains(&key)
    };
    while let Some(v) = queue.pop_front() {
        for u in fabric.neighbors(v) {
            if !seen[u] && live(v, u) {
                seen[u] = true;
                queue.push_back(u);
            }
        }
    }
    seen.iter().all(|&s| s)
}

/// Small deterministic PRNG (splitmix64) for plan generation; keeps this
/// crate free of external dependencies.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound` (`bound > 0`).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfnoc_topology::GridDims;

    #[test]
    fn plan_sorts_and_drains_in_order() {
        let mut plan = FaultPlan::new(vec![
            (30, FaultEvent::BandDown),
            (10, FaultEvent::ShortcutDown { src: 2 }),
            (20, FaultEvent::LinkGlitch { a: 0, b: 1 }),
        ]);
        assert_eq!(plan.len(), 3);
        let mut out = Vec::new();
        plan.events_at(15, &mut out);
        assert_eq!(out, vec![FaultEvent::ShortcutDown { src: 2 }]);
        out.clear();
        plan.events_at(30, &mut out);
        assert_eq!(
            out,
            vec![FaultEvent::LinkGlitch { a: 0, b: 1 }, FaultEvent::BandDown]
        );
        assert!(plan.is_exhausted());
    }

    #[test]
    fn rf_only_classification() {
        assert!(FaultPlan::new(vec![
            (5, FaultEvent::ShortcutDown { src: 1 }),
            (9, FaultEvent::BandDown),
            (12, FaultEvent::ShortcutUp { src: 1, dst: 7 }),
        ])
        .rf_only());
        assert!(!FaultPlan::new(vec![(5, FaultEvent::MeshLinkDown { a: 0, b: 1 })]).rf_only());
        assert!(!FaultPlan::new(vec![(5, FaultEvent::LinkGlitch { a: 0, b: 1 })]).rf_only());
    }

    #[test]
    fn random_plans_are_deterministic() {
        let fabric = FabricSpec::mesh(GridDims::new(4, 4));
        let shortcuts = vec![Shortcut::new(0, 15), Shortcut::new(15, 0)];
        let rates = FaultRates {
            shortcut_failures: 2.0,
            mesh_link_failures: 3.0,
            glitches: 5.0,
            repair_after: None,
        };
        let a = FaultPlan::random(42, &fabric, &shortcuts, rates, 100..10_000);
        let b = FaultPlan::random(42, &fabric, &shortcuts, rates, 100..10_000);
        assert_eq!(a, b);
        let c = FaultPlan::random(43, &fabric, &shortcuts, rates, 100..10_000);
        assert_ne!(a, c, "different seeds should give different plans");
        assert_eq!(a.len(), 10);
        assert!(a.events().iter().all(|(t, _)| *t >= 100 && *t < 10_000));
    }

    #[test]
    fn random_mesh_failures_keep_mesh_connected() {
        let fabric = FabricSpec::mesh(GridDims::new(4, 4));
        for seed in 0..20 {
            let rates = FaultRates {
                mesh_link_failures: 6.0,
                ..Default::default()
            };
            let plan = FaultPlan::random(seed, &fabric, &[], rates, 0..1000);
            let failed: Vec<(usize, usize)> = plan
                .events()
                .iter()
                .filter_map(|(_, e)| match e {
                    FaultEvent::MeshLinkDown { a, b } => Some((*a.min(b), *a.max(b))),
                    _ => None,
                })
                .collect();
            assert!(fabric_connected(&fabric, &failed), "seed {seed} partitioned the mesh");
        }
    }

    #[test]
    fn repair_events_follow_failures() {
        let fabric = FabricSpec::mesh(GridDims::new(4, 4));
        let shortcuts = vec![Shortcut::new(0, 15)];
        let rates = FaultRates {
            shortcut_failures: 1.0,
            repair_after: Some(500),
            ..Default::default()
        };
        let plan = FaultPlan::random(7, &fabric, &shortcuts, rates, 0..1000);
        assert_eq!(plan.len(), 2);
        let down = plan.events().iter().find(|(_, e)| matches!(e, FaultEvent::ShortcutDown { .. }));
        let up = plan.events().iter().find(|(_, e)| matches!(e, FaultEvent::ShortcutUp { .. }));
        let (td, tu) = (down.expect("down").0, up.expect("up").0);
        assert_eq!(tu, td + 500);
    }

    #[test]
    fn random_draws_links_from_fabric_adjacency() {
        // On a ring-mesh, base links are ring and gateway-mesh edges —
        // not the mesh edges a grid enumeration would produce. Every
        // generated link failure must be a real fabric link, and the
        // surviving fabric must stay connected.
        let fabric = FabricSpec::ring_mesh(GridDims::new(8, 8), 4);
        let rates = FaultRates { mesh_link_failures: 5.0, glitches: 4.0, ..Default::default() };
        for seed in 0..10 {
            let plan = FaultPlan::random(seed, &fabric, &[], rates, 0..5_000);
            let mut downs = Vec::new();
            for (_, e) in plan.events() {
                if let FaultEvent::MeshLinkDown { a, b } = e {
                    assert!(
                        fabric.port_between(*a, *b).is_some(),
                        "seed {seed}: {a}-{b} is not a fabric link"
                    );
                    downs.push((*a.min(b), *a.max(b)));
                }
            }
            assert!(!downs.is_empty(), "seed {seed} generated no link failures");
            assert!(
                fabric_connected(&fabric, &downs),
                "seed {seed} partitioned the ring-mesh"
            );
            // Each plan validates against the fabric it was drawn from.
            FaultPlan::validated(plan.events().to_vec(), &fabric).expect("self-consistent");
        }
    }

    #[test]
    fn fabric_links_match_legacy_mesh_enumeration() {
        // Seeded mesh plans must be unchanged by the fabric-generic
        // generator: the link order is the historical mesh order.
        let dims = GridDims::new(4, 4);
        let links = undirected_fabric_links(&FabricSpec::mesh(dims));
        let mut legacy = Vec::new();
        for r in 0..dims.nodes() {
            let c = dims.coord_of(r);
            if (c.x as usize) + 1 < dims.width() {
                legacy.push((r, r + 1));
            }
            if (c.y as usize) + 1 < dims.height() {
                legacy.push((r, r + dims.width()));
            }
        }
        assert_eq!(links, legacy);
    }

    #[test]
    fn health_report_displays() {
        let mut report = HealthReport {
            diagnosis: HealthDiagnosis::Deadlock,
            cycle: 1234,
            outstanding: 3,
            stalled_for: 200,
            since_completion: 900,
            recovering_faults: 0,
        };
        let text = report.to_string();
        assert!(text.contains("deadlock"));
        assert!(text.contains("1234"));
        assert!(!text.contains("recoveries"));
        report.recovering_faults = 2;
        assert!(report.to_string().contains("2 fault recoveries open"));
    }

    #[test]
    fn validated_accepts_well_formed_plans() {
        let fabric = FabricSpec::mesh(GridDims::new(4, 4));
        let plan = FaultPlan::validated(
            vec![
                (10, FaultEvent::ShortcutDown { src: 2 }),
                (50, FaultEvent::ShortcutUp { src: 2, dst: 9 }),
                (20, FaultEvent::MeshLinkDown { a: 0, b: 1 }),
                (80, FaultEvent::MeshLinkUp { a: 1, b: 0 }),
                (30, FaultEvent::LinkGlitch { a: 0, b: 15 }),
            ],
            &fabric,
        )
        .expect("valid plan");
        assert_eq!(plan.len(), 5);
    }

    #[test]
    fn validated_rejects_out_of_range_routers() {
        let fabric = FabricSpec::mesh(GridDims::new(4, 4));
        let err = FaultPlan::validated(
            vec![(10, FaultEvent::ShortcutDown { src: 16 })],
            &fabric,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::FaultRouterOutOfRange { router: 16, nodes: 16 });
        let err = FaultPlan::validated(
            vec![(10, FaultEvent::LinkGlitch { a: 0, b: 99 })],
            &fabric,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::FaultRouterOutOfRange { router: 99, nodes: 16 });
    }

    #[test]
    fn validated_rejects_non_adjacent_mesh_links() {
        let fabric = FabricSpec::mesh(GridDims::new(4, 4));
        let err = FaultPlan::validated(
            vec![(10, FaultEvent::MeshLinkDown { a: 0, b: 5 })],
            &fabric,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::FaultLinkNotAdjacent { a: 0, b: 5 });
    }

    #[test]
    fn validated_rejects_repair_before_fail() {
        let fabric = FabricSpec::mesh(GridDims::new(4, 4));
        let err = FaultPlan::validated(
            vec![(10, FaultEvent::ShortcutUp { src: 2, dst: 9 })],
            &fabric,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::FaultRepairBeforeFail { cycle: 10 });
        let err = FaultPlan::validated(
            vec![
                (10, FaultEvent::MeshLinkDown { a: 0, b: 1 }),
                (20, FaultEvent::MeshLinkUp { a: 1, b: 2 }),
            ],
            &fabric,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::FaultRepairBeforeFail { cycle: 20 });
        // A BandDown fails every transmitter, so any later ShortcutUp is
        // a legitimate repair.
        assert!(FaultPlan::validated(
            vec![
                (10, FaultEvent::BandDown),
                (50, FaultEvent::ShortcutUp { src: 2, dst: 9 }),
            ],
            &fabric,
        )
        .is_ok());
    }

    #[test]
    fn correlated_plans_are_deterministic_and_validated() {
        let fabric = FabricSpec::mesh(GridDims::new(6, 6));
        let shortcuts = vec![Shortcut::new(0, 35), Shortcut::new(30, 5)];
        let a = FaultPlan::correlated(9, &fabric, &shortcuts, 2.0, 1.0, 1_000..40_000);
        let b = FaultPlan::correlated(9, &fabric, &shortcuts, 2.0, 1.0, 1_000..40_000);
        assert_eq!(a, b, "same arguments, same plan");
        assert!(!a.is_empty());
        // Every correlated plan passes its own validation rules.
        FaultPlan::validated(a.events().to_vec(), &fabric).expect("self-consistent");
        // The race phase is present: a ShortcutDown strictly before a
        // BandDown, and a repair after.
        let t_down = a.events().iter().find(|(_, e)| matches!(e, FaultEvent::ShortcutDown { .. }));
        let t_band = a.events().iter().find(|(_, e)| matches!(e, FaultEvent::BandDown));
        let t_up = a.events().iter().find(|(_, e)| matches!(e, FaultEvent::ShortcutUp { .. }));
        let (td, tb, tu) = (t_down.unwrap().0, t_band.unwrap().0, t_up.unwrap().0);
        assert!(td < tb && tb < tu, "race orders down < band-down < repair");
        assert_eq!(tb - td, 40, "band drops mid-retune");
    }

    #[test]
    fn correlated_glitches_scale_with_load_and_intensity_zero_is_empty() {
        let fabric = FabricSpec::mesh(GridDims::new(6, 6));
        let count = |load: f64| {
            FaultPlan::correlated(3, &fabric, &[], 2.0, load, 0..30_000)
                .events()
                .iter()
                .filter(|(_, e)| matches!(e, FaultEvent::LinkGlitch { .. }))
                .count()
        };
        assert!(count(2.0) > count(0.5), "loaded links glitch more");
        assert!(FaultPlan::correlated(3, &fabric, &[], 0.0, 1.0, 0..30_000).is_empty());
    }

    #[test]
    fn correlated_storm_keeps_mesh_connected_and_heals() {
        let fabric = FabricSpec::mesh(GridDims::new(6, 6));
        for seed in 0..10 {
            let plan = FaultPlan::correlated(seed, &fabric, &[], 3.0, 1.0, 0..50_000);
            let downs: Vec<(usize, usize)> = plan
                .events()
                .iter()
                .filter_map(|(_, e)| match e {
                    FaultEvent::MeshLinkDown { a, b } => Some((*a.min(b), *a.max(b))),
                    _ => None,
                })
                .collect();
            assert!(fabric_connected(&fabric, &downs), "seed {seed} partitioned the mesh");
            let ups = plan
                .events()
                .iter()
                .filter(|(_, e)| matches!(e, FaultEvent::MeshLinkUp { .. }))
                .count();
            assert_eq!(ups, downs.len(), "every storm link heals");
        }
    }
}
