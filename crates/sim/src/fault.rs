//! Deterministic fault injection for the RF-I overlaid NoC.
//!
//! A [`FaultPlan`] is a seed-driven schedule of [`FaultEvent`]s applied
//! inside [`crate::Network::step`]. Faults follow fail-stop semantics at
//! packet granularity: a failed port refuses *new* packet allocations while
//! wormholes already holding the port finish normally, so credit-based flow
//! control stays consistent. Failed RF-I shortcuts are torn out through the
//! same drain → retune → table-rewrite state machine as a planned
//! reconfiguration (paper §3.2), degrading traffic onto the XY mesh; failed
//! mesh links trigger a detour-table rebuild over the surviving links.
//! Transient link glitches model flit corruption detected at the receiver
//! and retransmitted from the upstream buffer: the in-flight flit (and the
//! link behind it) is delayed by [`crate::SimConfig::link_retry_cycles`],
//! leaving credits untouched.

use rfnoc_topology::{GridDims, Shortcut};

/// One scheduled fault or repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The RF-I transmitter at router `src` fails. Its shortcut drains and
    /// is removed from the routing tables; the transmitter stays failed
    /// (ignored by later retunes) until a [`FaultEvent::ShortcutUp`] at the
    /// same router.
    ShortcutDown {
        /// Router whose RF transmitter fails.
        src: usize,
    },
    /// The whole RF band fails: every active shortcut is torn down at once
    /// and all transmitters are marked failed.
    BandDown,
    /// The RF transmitter at `src` is repaired and retuned to reach `dst`.
    ShortcutUp {
        /// Router whose RF transmitter is repaired.
        src: usize,
        /// Receiver the repaired transmitter is tuned to.
        dst: usize,
    },
    /// The mesh link between adjacent routers `a` and `b` fails in both
    /// directions; detour tables route around it.
    MeshLinkDown {
        /// One endpoint.
        a: usize,
        /// The adjacent endpoint.
        b: usize,
    },
    /// The mesh link between `a` and `b` is repaired.
    MeshLinkUp {
        /// One endpoint.
        a: usize,
        /// The adjacent endpoint.
        b: usize,
    },
    /// A transient glitch corrupts the flit in flight on the link from `a`
    /// to `b` (mesh or RF); the flit is dropped at the receiver and
    /// retransmitted from the sender's buffer after
    /// [`crate::SimConfig::link_retry_cycles`]. No effect on an idle link.
    LinkGlitch {
        /// Sending router.
        a: usize,
        /// Receiving router.
        b: usize,
    },
}

impl FaultEvent {
    /// Whether this event touches only RF-I resources (never the mesh).
    pub fn rf_only(&self) -> bool {
        matches!(
            self,
            Self::ShortcutDown { .. } | Self::BandDown | Self::ShortcutUp { .. }
        )
    }
}

/// Expected fault counts over a generation window, used by
/// [`FaultPlan::random`]. Each field is an *expected number of events*
/// across the window (fractions round to the nearest count).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Expected permanent RF shortcut (transmitter) failures.
    pub shortcut_failures: f64,
    /// Expected permanent mesh link failures. Links are sampled so the
    /// surviving mesh stays connected.
    pub mesh_link_failures: f64,
    /// Expected transient link glitches.
    pub glitches: f64,
    /// When set, every permanent failure is repaired this many cycles
    /// after it strikes.
    pub repair_after: Option<u64>,
}

impl FaultRates {
    /// Scales every expected count by `factor` (repair delay unchanged).
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        Self {
            shortcut_failures: self.shortcut_failures * factor,
            mesh_link_failures: self.mesh_link_failures * factor,
            glitches: self.glitches * factor,
            repair_after: self.repair_after,
        }
    }
}

/// A deterministic schedule of fault events, sorted by cycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<(u64, FaultEvent)>,
    pos: usize,
}

impl FaultPlan {
    /// A plan from `(cycle, event)` pairs; sorted by cycle internally
    /// (stable, so same-cycle events keep their given order).
    pub fn new(mut events: Vec<(u64, FaultEvent)>) -> Self {
        events.sort_by_key(|(c, _)| *c);
        Self { events, pos: 0 }
    }

    /// The scheduled events, in firing order.
    pub fn events(&self) -> &[(u64, FaultEvent)] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether every event touches only RF-I resources — such a plan can
    /// never break packet delivery, only degrade it to the mesh.
    pub fn rf_only(&self) -> bool {
        self.events.iter().all(|(_, e)| e.rf_only())
    }

    /// Whether every scheduled event has already fired.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.events.len()
    }

    /// Appends the events due at or before `cycle` to `out` and advances
    /// past them.
    pub fn events_at(&mut self, cycle: u64, out: &mut Vec<FaultEvent>) {
        while self.pos < self.events.len() && self.events[self.pos].0 <= cycle {
            out.push(self.events[self.pos].1);
            self.pos += 1;
        }
    }

    /// Generates a deterministic random plan for a `dims` mesh carrying
    /// `shortcuts`: the same `(seed, rates, window)` always produces the
    /// same schedule. Shortcut failures strike distinct live transmitters;
    /// mesh link failures are sampled rejection-style so the surviving mesh
    /// stays connected (a disconnected mesh would make delivery impossible
    /// rather than degraded); glitches strike uniformly random directed
    /// mesh links.
    pub fn random(
        seed: u64,
        dims: GridDims,
        shortcuts: &[Shortcut],
        rates: FaultRates,
        window: std::ops::Range<u64>,
    ) -> Self {
        let mut rng = SplitMix64::new(seed);
        let span = window.end.saturating_sub(window.start).max(1);
        let mut events: Vec<(u64, FaultEvent)> = Vec::new();
        let push_with_repair = |t: u64, down: FaultEvent, up: FaultEvent, ev: &mut Vec<(u64, FaultEvent)>| {
            ev.push((t, down));
            if let Some(delay) = rates.repair_after {
                ev.push((t + delay, up));
            }
        };

        // Shortcut (transmitter) failures: distinct live shortcuts.
        let mut alive: Vec<Shortcut> = shortcuts.to_vec();
        let n_shortcut = round_count(rates.shortcut_failures).min(alive.len());
        for _ in 0..n_shortcut {
            let t = window.start + rng.below(span);
            let idx = rng.below(alive.len() as u64) as usize;
            let s = alive.swap_remove(idx);
            push_with_repair(
                t,
                FaultEvent::ShortcutDown { src: s.src },
                FaultEvent::ShortcutUp { src: s.src, dst: s.dst },
                &mut events,
            );
        }

        // Mesh link failures: distinct undirected links, surviving mesh
        // kept connected (bounded rejection sampling).
        let all_links = undirected_mesh_links(dims);
        let n_mesh = round_count(rates.mesh_link_failures).min(all_links.len());
        let mut failed: Vec<(usize, usize)> = Vec::new();
        let mut attempts = 0usize;
        while failed.len() < n_mesh && attempts < n_mesh * 64 + 64 {
            attempts += 1;
            let (a, b) = all_links[rng.below(all_links.len() as u64) as usize];
            if failed.contains(&(a, b)) {
                continue;
            }
            failed.push((a, b));
            if !mesh_connected(dims, &failed) {
                failed.pop();
                continue;
            }
            let t = window.start + rng.below(span);
            push_with_repair(
                t,
                FaultEvent::MeshLinkDown { a, b },
                FaultEvent::MeshLinkUp { a, b },
                &mut events,
            );
        }

        // Transient glitches: uniform over directed mesh links.
        for _ in 0..round_count(rates.glitches) {
            let t = window.start + rng.below(span);
            let (a, b) = all_links[rng.below(all_links.len() as u64) as usize];
            let (a, b) = if rng.below(2) == 0 { (a, b) } else { (b, a) };
            events.push((t, FaultEvent::LinkGlitch { a, b }));
        }

        Self::new(events)
    }
}

/// Why a run was flagged unhealthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthDiagnosis {
    /// No switch grant anywhere in the network for the watchdog window
    /// while measured packets were outstanding: a true deadlock (or a hang
    /// on a torn-down resource).
    Deadlock,
    /// Grants kept flowing but no measured message completed for an
    /// extended window: packets are moving without making progress.
    Livelock,
    /// The surviving mesh is disconnected — some destinations are
    /// unreachable, so outstanding traffic can never complete.
    Partitioned,
}

impl std::fmt::Display for HealthDiagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Deadlock => write!(f, "deadlock"),
            Self::Livelock => write!(f, "livelock"),
            Self::Partitioned => write!(f, "partitioned"),
        }
    }
}

/// Structured report produced when the watchdog flags a hang instead of
/// letting [`crate::Network::run`] spin silently to the drain limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthReport {
    /// What went wrong.
    pub diagnosis: HealthDiagnosis,
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Measured messages still outstanding.
    pub outstanding: u64,
    /// Cycles since the last switch grant (or injection) anywhere.
    pub stalled_for: u64,
    /// Cycles since the last measured message completed (or since the
    /// network last went busy).
    pub since_completion: u64,
}

impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at cycle {}: {} messages outstanding, no grant for {} cycles, \
             no completion for {} cycles",
            self.diagnosis, self.cycle, self.outstanding, self.stalled_for, self.since_completion
        )
    }
}

fn round_count(expected: f64) -> usize {
    if expected <= 0.0 { 0 } else { expected.round() as usize }
}

/// All undirected mesh links of a grid, as `(lower, higher)` node pairs.
fn undirected_mesh_links(dims: GridDims) -> Vec<(usize, usize)> {
    let n = dims.nodes();
    let mut links = Vec::new();
    for r in 0..n {
        let c = dims.coord_of(r);
        if (c.x as usize) + 1 < dims.width() {
            links.push((r, r + 1));
        }
        if (c.y as usize) + 1 < dims.height() {
            links.push((r, r + dims.width()));
        }
    }
    links
}

/// Whether the mesh minus `failed` undirected links is connected.
fn mesh_connected(dims: GridDims, failed: &[(usize, usize)]) -> bool {
    let n = dims.nodes();
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::from([0usize]);
    seen[0] = true;
    let live = |a: usize, b: usize| {
        let key = (a.min(b), a.max(b));
        !failed.contains(&key)
    };
    while let Some(v) = queue.pop_front() {
        let c = dims.coord_of(v);
        let mut neighbors = Vec::with_capacity(4);
        if c.x > 0 {
            neighbors.push(v - 1);
        }
        if (c.x as usize) + 1 < dims.width() {
            neighbors.push(v + 1);
        }
        if c.y > 0 {
            neighbors.push(v - dims.width());
        }
        if (c.y as usize) + 1 < dims.height() {
            neighbors.push(v + dims.width());
        }
        for u in neighbors {
            if !seen[u] && live(v, u) {
                seen[u] = true;
                queue.push_back(u);
            }
        }
    }
    seen.iter().all(|&s| s)
}

/// Small deterministic PRNG (splitmix64) for plan generation; keeps this
/// crate free of external dependencies.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound` (`bound > 0`).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_and_drains_in_order() {
        let mut plan = FaultPlan::new(vec![
            (30, FaultEvent::BandDown),
            (10, FaultEvent::ShortcutDown { src: 2 }),
            (20, FaultEvent::LinkGlitch { a: 0, b: 1 }),
        ]);
        assert_eq!(plan.len(), 3);
        let mut out = Vec::new();
        plan.events_at(15, &mut out);
        assert_eq!(out, vec![FaultEvent::ShortcutDown { src: 2 }]);
        out.clear();
        plan.events_at(30, &mut out);
        assert_eq!(
            out,
            vec![FaultEvent::LinkGlitch { a: 0, b: 1 }, FaultEvent::BandDown]
        );
        assert!(plan.is_exhausted());
    }

    #[test]
    fn rf_only_classification() {
        assert!(FaultPlan::new(vec![
            (5, FaultEvent::ShortcutDown { src: 1 }),
            (9, FaultEvent::BandDown),
            (12, FaultEvent::ShortcutUp { src: 1, dst: 7 }),
        ])
        .rf_only());
        assert!(!FaultPlan::new(vec![(5, FaultEvent::MeshLinkDown { a: 0, b: 1 })]).rf_only());
        assert!(!FaultPlan::new(vec![(5, FaultEvent::LinkGlitch { a: 0, b: 1 })]).rf_only());
    }

    #[test]
    fn random_plans_are_deterministic() {
        let dims = GridDims::new(4, 4);
        let shortcuts = vec![Shortcut::new(0, 15), Shortcut::new(15, 0)];
        let rates = FaultRates {
            shortcut_failures: 2.0,
            mesh_link_failures: 3.0,
            glitches: 5.0,
            repair_after: None,
        };
        let a = FaultPlan::random(42, dims, &shortcuts, rates, 100..10_000);
        let b = FaultPlan::random(42, dims, &shortcuts, rates, 100..10_000);
        assert_eq!(a, b);
        let c = FaultPlan::random(43, dims, &shortcuts, rates, 100..10_000);
        assert_ne!(a, c, "different seeds should give different plans");
        assert_eq!(a.len(), 10);
        assert!(a.events().iter().all(|(t, _)| *t >= 100 && *t < 10_000));
    }

    #[test]
    fn random_mesh_failures_keep_mesh_connected() {
        let dims = GridDims::new(4, 4);
        for seed in 0..20 {
            let rates = FaultRates {
                mesh_link_failures: 6.0,
                ..Default::default()
            };
            let plan = FaultPlan::random(seed, dims, &[], rates, 0..1000);
            let failed: Vec<(usize, usize)> = plan
                .events()
                .iter()
                .filter_map(|(_, e)| match e {
                    FaultEvent::MeshLinkDown { a, b } => Some((*a.min(b), *a.max(b))),
                    _ => None,
                })
                .collect();
            assert!(mesh_connected(dims, &failed), "seed {seed} partitioned the mesh");
        }
    }

    #[test]
    fn repair_events_follow_failures() {
        let dims = GridDims::new(4, 4);
        let shortcuts = vec![Shortcut::new(0, 15)];
        let rates = FaultRates {
            shortcut_failures: 1.0,
            repair_after: Some(500),
            ..Default::default()
        };
        let plan = FaultPlan::random(7, dims, &shortcuts, rates, 0..1000);
        assert_eq!(plan.len(), 2);
        let down = plan.events().iter().find(|(_, e)| matches!(e, FaultEvent::ShortcutDown { .. }));
        let up = plan.events().iter().find(|(_, e)| matches!(e, FaultEvent::ShortcutUp { .. }));
        let (td, tu) = (down.expect("down").0, up.expect("up").0);
        assert_eq!(tu, td + 500);
    }

    #[test]
    fn health_report_displays() {
        let report = HealthReport {
            diagnosis: HealthDiagnosis::Deadlock,
            cycle: 1234,
            outstanding: 3,
            stalled_for: 200,
            since_completion: 900,
        };
        let text = report.to_string();
        assert!(text.contains("deadlock"));
        assert!(text.contains("1234"));
    }
}
