//! End-to-end behavioural tests of the NoC simulator.

use rfnoc_power::LinkWidth;
use rfnoc_sim::{
    DestSet, McConfig, MessageClass, MessageSpec, MulticastMode, Network, NetworkSpec,
    ReconfigError, RoutingKind, ScriptedWorkload, SimConfig, SimError, VctConfig, Workload,
};
use rfnoc_topology::{GridDims, Shortcut};

fn quick_config() -> SimConfig {
    let mut cfg = SimConfig::paper_baseline();
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 1_000;
    cfg.drain_cycles = 20_000;
    cfg
}

fn run_scripted(spec: NetworkSpec, events: Vec<(u64, MessageSpec)>) -> rfnoc_sim::RunStats {
    let mut network = Network::new(spec);
    let mut workload = ScriptedWorkload::new(events);
    network.run(&mut workload)
}

#[test]
fn single_message_crosses_mesh() {
    let dims = GridDims::new(4, 4);
    let spec = NetworkSpec::mesh_baseline(dims, quick_config());
    let stats = run_scripted(spec, vec![(0, MessageSpec::unicast(0, 15, MessageClass::Data))]);
    assert_eq!(stats.injected_messages, 1);
    assert_eq!(stats.completed_messages, 1);
    assert!(!stats.saturated);
    // 6 hops × 5-cycle head pipeline + ejection + serialization of 3 flits:
    // zero-load latency must land in a tight band around 38 cycles.
    let lat = stats.avg_message_latency();
    assert!((30.0..=45.0).contains(&lat), "unexpected zero-load latency {lat}");
    // 3 flits ejected; 39 payload bytes traverse 7 routers (6 hops +
    // destination).
    assert_eq!(stats.ejected_flits, 3);
    assert_eq!(stats.activity.total_router_bytes(), 39 * 7);
    // 39 bytes cross 6 links (ejection is not a link).
    assert_eq!(stats.activity.link_byte_hops, 39 * 6);
    assert_eq!(stats.activity.rf_bytes, 0);
}

#[test]
fn adjacent_message_is_fast() {
    let dims = GridDims::new(4, 4);
    let spec = NetworkSpec::mesh_baseline(dims, quick_config());
    let stats = run_scripted(spec, vec![(0, MessageSpec::unicast(0, 1, MessageClass::Request))]);
    assert_eq!(stats.completed_messages, 1);
    let lat = stats.avg_message_latency();
    assert!(lat <= 16.0, "one-hop request latency {lat}");
}

#[test]
fn narrower_links_serialize_more_flits() {
    let dims = GridDims::new(4, 4);
    let lat_at = |width: LinkWidth| {
        let cfg = quick_config().with_link_width(width);
        let spec = NetworkSpec::mesh_baseline(dims, cfg);
        let stats =
            run_scripted(spec, vec![(0, MessageSpec::unicast(0, 15, MessageClass::Memory))]);
        assert_eq!(stats.completed_messages, 1);
        stats.avg_message_latency()
    };
    let l16 = lat_at(LinkWidth::B16);
    let l8 = lat_at(LinkWidth::B8);
    let l4 = lat_at(LinkWidth::B4);
    // 132B = 9/17/33 flits: zero-load latency grows by the extra
    // serialization cycles.
    assert!(l8 > l16 + 5.0, "8B {l8} vs 16B {l16}");
    assert!(l4 > l8 + 10.0, "4B {l4} vs 8B {l8}");
}

#[test]
fn shortcut_cuts_cross_chip_latency() {
    let dims = GridDims::new(10, 10);
    let base = NetworkSpec::mesh_baseline(dims, quick_config());
    let base_stats =
        run_scripted(base, vec![(0, MessageSpec::unicast(0, 99, MessageClass::Data))]);
    let rf = NetworkSpec::with_shortcuts(dims, quick_config(), vec![Shortcut::new(0, 99)]);
    let rf_stats = run_scripted(rf, vec![(0, MessageSpec::unicast(0, 99, MessageClass::Data))]);
    assert_eq!(base_stats.completed_messages, 1);
    assert_eq!(rf_stats.completed_messages, 1);
    let b = base_stats.avg_message_latency();
    let r = rf_stats.avg_message_latency();
    // 18 hops collapse to a single-cycle RF hop.
    assert!(r < b / 3.0, "shortcut latency {r} vs baseline {b}");
    assert_eq!(rf_stats.activity.rf_bytes, 39, "all payload bytes cross the shortcut");
    assert_eq!(rf_stats.activity.link_byte_hops, 0, "no mesh hops on the direct shortcut");
}

#[test]
fn shortcut_attracts_nearby_traffic() {
    let dims = GridDims::new(10, 10);
    let spec = NetworkSpec::with_shortcuts(dims, quick_config(), vec![Shortcut::new(11, 88)]);
    // 1 -> 88: shortest path goes through the shortcut at 11.
    let stats = run_scripted(spec, vec![(0, MessageSpec::unicast(1, 88, MessageClass::Data))]);
    assert_eq!(stats.completed_messages, 1);
    assert_eq!(stats.activity.rf_bytes, 39);
    // 1 hop to 11, RF to 88: 39 bytes cross one mesh link.
    assert_eq!(stats.activity.link_byte_hops, 39);
}

#[test]
fn wormhole_stream_on_shared_path_completes() {
    let dims = GridDims::new(4, 4);
    // 30 back-to-back data messages all crossing the same row.
    let events: Vec<(u64, MessageSpec)> = (0..30)
        .map(|i| (i as u64, MessageSpec::unicast(0, 3, MessageClass::Data)))
        .collect();
    let stats = run_scripted(NetworkSpec::mesh_baseline(dims, quick_config()), events);
    assert_eq!(stats.completed_messages, 30);
    assert!(!stats.saturated);
    // Bandwidth bound: 3 flits per message over one link, 1 flit/cycle.
    assert!(stats.avg_message_latency() >= 30.0);
}

#[test]
fn multicast_as_unicasts_completes_once() {
    let dims = GridDims::new(4, 4);
    let dests = DestSet::from_nodes([5, 10, 15]);
    let stats = run_scripted(
        NetworkSpec::mesh_baseline(dims, quick_config()),
        vec![(0, MessageSpec::multicast(0, dests))],
    );
    assert_eq!(stats.injected_messages, 1);
    assert_eq!(stats.completed_messages, 1, "multicast counts once");
    // three unicast legs of 3 flits each
    assert_eq!(stats.ejected_flits, 9);
}

#[test]
fn multicast_including_source_is_handled() {
    let dims = GridDims::new(4, 4);
    let dests = DestSet::from_nodes([0, 15]);
    let stats = run_scripted(
        NetworkSpec::mesh_baseline(dims, quick_config()),
        vec![(0, MessageSpec::multicast(0, dests))],
    );
    assert_eq!(stats.completed_messages, 1);
}

fn vct_spec(dims: GridDims) -> NetworkSpec {
    let mut spec = NetworkSpec::mesh_baseline(dims, quick_config());
    spec.multicast = MulticastMode::Vct(VctConfig::default());
    spec
}

#[test]
fn vct_multicast_completes_and_saves_link_traversals() {
    let dims = GridDims::new(4, 4);
    let dests = DestSet::from_nodes([12, 13, 14, 15]); // bottom row
    let unicast_stats = run_scripted(
        NetworkSpec::mesh_baseline(dims, quick_config()),
        vec![(0, MessageSpec::multicast(0, dests))],
    );
    let vct_stats = run_scripted(vct_spec(dims), vec![(0, MessageSpec::multicast(0, dests))]);
    assert_eq!(vct_stats.completed_messages, 1);
    // The tree shares the column 0 path; unicast expansion retransmits it.
    assert!(
        vct_stats.activity.link_byte_hops < unicast_stats.activity.link_byte_hops,
        "VCT {} vs unicasts {}",
        vct_stats.activity.link_byte_hops,
        unicast_stats.activity.link_byte_hops
    );
}

#[test]
fn vct_tree_reuse_skips_setup() {
    let dims = GridDims::new(4, 4);
    let dests = DestSet::from_nodes([15]);
    // Two identical multicasts: the second reuses the tree and finishes
    // sooner after its creation.
    let stats = run_scripted(
        vct_spec(dims),
        vec![
            (0, MessageSpec::multicast(0, dests)),
            (200, MessageSpec::multicast(0, dests)),
        ],
    );
    assert_eq!(stats.completed_messages, 2);
    // total latency = (setup + t) + t  =>  average below setup + t
    let setup = VctConfig::default().setup_latency as f64;
    let avg = stats.avg_message_latency();
    assert!(avg < setup + 45.0, "avg {avg} suggests both paid setup");
}

fn rf_mc_spec(dims: GridDims) -> NetworkSpec {
    let receivers: Vec<usize> = (0..dims.nodes()).filter(|i| i % 2 == 0).collect();
    let serving = McConfig::serving_map(dims, &receivers);
    let mut cluster_of = vec![None; dims.nodes()];
    cluster_of[5] = Some(0); // cache bank + transmitter
    cluster_of[6] = Some(0); // another cache in the cluster
    let mc = McConfig {
        transmitters: vec![5],
        cluster_of,
        receivers,
        serving,
        epoch_cycles: 1_000,
        rf_flit_bytes: 16,
    };
    let mut spec = NetworkSpec::mesh_baseline(dims, quick_config());
    spec.multicast = MulticastMode::Rf;
    spec.mc = Some(mc);
    spec
}

#[test]
fn rf_multicast_from_transmitter_completes() {
    let dims = GridDims::new(4, 4);
    let dests = DestSet::from_nodes([0, 3, 12, 15]);
    let stats = run_scripted(rf_mc_spec(dims), vec![(0, MessageSpec::multicast(5, dests))]);
    assert_eq!(stats.completed_messages, 1);
    assert!(stats.activity.rf_bytes >= 4 * 16, "DBV + payload flits broadcast");
    let lat = stats.avg_message_latency();
    assert!(lat < 60.0, "broadcast latency {lat}");
}

#[test]
fn rf_multicast_from_non_central_cache_routes_via_transmitter() {
    let dims = GridDims::new(4, 4);
    let dests = DestSet::from_nodes([0, 15]);
    let direct = run_scripted(rf_mc_spec(dims), vec![(0, MessageSpec::multicast(5, dests))]);
    let carried = run_scripted(rf_mc_spec(dims), vec![(0, MessageSpec::multicast(6, dests))]);
    assert_eq!(carried.completed_messages, 1);
    // The carry hop to the central bank adds mesh latency.
    assert!(
        carried.avg_message_latency() > direct.avg_message_latency(),
        "carried {} vs direct {}",
        carried.avg_message_latency(),
        direct.avg_message_latency()
    );
    assert!(carried.activity.link_byte_hops > 0);
}

#[test]
fn rf_multicast_from_non_cache_falls_back_to_unicasts() {
    let dims = GridDims::new(4, 4);
    let dests = DestSet::from_nodes([0, 15]);
    // Router 9 is not a cache bank in rf_mc_spec.
    let stats = run_scripted(rf_mc_spec(dims), vec![(0, MessageSpec::multicast(9, dests))]);
    assert_eq!(stats.completed_messages, 1);
}

#[test]
fn deterministic_repeat_runs() {
    let dims = GridDims::new(6, 6);
    let events: Vec<(u64, MessageSpec)> = (0..200u64)
        .map(|i| {
            let src = (i * 7 % 36) as usize;
            let dst = (i * 13 % 36) as usize;
            let dst = if dst == src { (dst + 1) % 36 } else { dst };
            (i / 2, MessageSpec::unicast(src, dst, MessageClass::Data))
        })
        .collect();
    let spec = NetworkSpec::with_shortcuts(
        dims,
        quick_config(),
        vec![Shortcut::new(0, 35), Shortcut::new(30, 5)],
    );
    let a = run_scripted(spec.clone(), events.clone());
    let b = run_scripted(spec, events);
    assert_eq!(a, b, "simulation must be deterministic");
    assert_eq!(a.completed_messages, 200);
}

#[test]
fn heavy_crossing_load_eventually_drains() {
    // Adversarial all-to-opposite traffic with table routing exercises the
    // escape VCs; everything must still complete.
    let dims = GridDims::new(6, 6);
    let mut events = Vec::new();
    for round in 0..20u64 {
        for src in 0..36usize {
            let dst = 35 - src;
            if dst != src {
                events.push((round * 3, MessageSpec::unicast(src, dst, MessageClass::Data)));
            }
        }
    }
    let spec = NetworkSpec::with_shortcuts(
        dims,
        quick_config(),
        vec![Shortcut::new(1, 34), Shortcut::new(34, 1), Shortcut::new(6, 29)],
    );
    let stats = run_scripted(spec, events);
    assert_eq!(stats.completed_messages, stats.injected_messages);
    assert!(!stats.saturated);
}

#[test]
fn flit_conservation_under_random_load() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let dims = GridDims::new(6, 6);
    let mut rng = StdRng::seed_from_u64(42);
    let mut events = Vec::new();
    for cycle in 0..800u64 {
        if rng.gen_bool(0.3) {
            let src = rng.gen_range(0..36);
            let mut dst = rng.gen_range(0..36);
            if dst == src {
                dst = (dst + 1) % 36;
            }
            let class = match rng.gen_range(0..3) {
                0 => MessageClass::Request,
                1 => MessageClass::Data,
                _ => MessageClass::Memory,
            };
            events.push((cycle, MessageSpec::unicast(src, dst, class)));
        }
    }
    let expected_flits: u64 = events
        .iter()
        .map(|(_, m)| LinkWidth::B16.flits_for(m.bytes()) as u64)
        .sum();
    let stats = run_scripted(NetworkSpec::mesh_baseline(dims, quick_config()), events);
    assert_eq!(stats.completed_messages, stats.injected_messages);
    assert_eq!(stats.ejected_flits, expected_flits, "every flit must eject exactly once");
}

#[test]
fn distance_histogram_records_injections() {
    let dims = GridDims::new(4, 4);
    let stats = run_scripted(
        NetworkSpec::mesh_baseline(dims, quick_config()),
        vec![
            (0, MessageSpec::unicast(0, 1, MessageClass::Request)), // 1 hop
            (0, MessageSpec::unicast(0, 15, MessageClass::Request)), // 6 hops
            (0, MessageSpec::unicast(0, 5, MessageClass::Request)), // 2 hops
        ],
    );
    assert_eq!(stats.distance_histogram[1], 1);
    assert_eq!(stats.distance_histogram[2], 1);
    assert_eq!(stats.distance_histogram[6], 1);
}

#[test]
fn warmup_messages_are_not_measured() {
    let dims = GridDims::new(4, 4);
    let mut cfg = quick_config();
    cfg.warmup_cycles = 100;
    cfg.measure_cycles = 1_000;
    let spec = NetworkSpec::mesh_baseline(dims, cfg);
    let stats = run_scripted(
        spec,
        vec![
            (0, MessageSpec::unicast(0, 15, MessageClass::Data)), // warmup
            (200, MessageSpec::unicast(0, 15, MessageClass::Data)), // measured
        ],
    );
    assert_eq!(stats.injected_messages, 1);
    assert_eq!(stats.completed_messages, 1);
}

/// A workload that floods the network far beyond capacity.
struct Flood;

impl Workload for Flood {
    fn messages_at(&mut self, _cycle: u64, out: &mut Vec<MessageSpec>) {
        for src in 0..16usize {
            out.push(MessageSpec::unicast(src, 15 - src.min(14), MessageClass::Memory));
        }
    }
}

#[test]
fn saturation_is_detected_not_hung() {
    let dims = GridDims::new(4, 4);
    let mut cfg = quick_config();
    cfg.measure_cycles = 500;
    cfg.drain_cycles = 200;
    let mut network = Network::new(NetworkSpec::mesh_baseline(dims, cfg));
    let stats = network.run(&mut Flood);
    assert!(stats.saturated, "flood must saturate");
    assert!(stats.end_cycle <= 500 + 200, "drain limit must bound the run");
}

#[test]
#[should_panic(expected = "two outbound shortcuts")]
fn duplicate_outbound_shortcut_rejected() {
    let dims = GridDims::new(4, 4);
    Network::new(NetworkSpec::with_shortcuts(
        dims,
        quick_config(),
        vec![Shortcut::new(0, 15), Shortcut::new(0, 12)],
    ));
}

#[test]
#[should_panic(expected = "XY routing cannot use shortcuts")]
fn xy_with_shortcuts_rejected() {
    let dims = GridDims::new(4, 4);
    let mut spec = NetworkSpec::mesh_baseline(dims, quick_config());
    spec.shortcuts = vec![Shortcut::new(0, 15)];
    spec.routing = RoutingKind::Xy;
    Network::new(spec);
}

#[test]
fn wire_shortcut_slower_than_rf_but_faster_than_mesh() {
    let dims = GridDims::new(10, 10);
    let message = vec![(0u64, MessageSpec::unicast(0, 99, MessageClass::Data))];
    let rf = run_scripted(
        NetworkSpec::with_shortcuts(dims, quick_config(), vec![Shortcut::new(0, 99)]),
        message.clone(),
    );
    let mut wire_spec =
        NetworkSpec::with_shortcuts(dims, quick_config(), vec![Shortcut::new(0, 99)]);
    wire_spec.wire_shortcut_cycles_per_hop = Some(0.5);
    let wire = run_scripted(wire_spec, message.clone());
    let mesh = run_scripted(NetworkSpec::mesh_baseline(dims, quick_config()), message);
    let (r, w, m) =
        (rf.avg_message_latency(), wire.avg_message_latency(), mesh.avg_message_latency());
    assert!(r < w, "RF ({r}) must beat wire ({w})");
    assert!(w < m, "wire shortcut ({w}) must still beat the full mesh path ({m})");
    // Wire traffic is charged as repeated-wire energy over 18 hops.
    assert_eq!(wire.activity.rf_bytes, 0);
    assert_eq!(wire.activity.link_byte_hops, 39 * 18);
}

#[test]
fn rf_channel_drains_narrow_flit_bursts() {
    // At 4B mesh width the 16B RF channel moves up to 4 flits/cycle, so a
    // message that queued up behind a busy shortcut drains faster than a
    // 4B mesh link could.
    let dims = GridDims::new(10, 10);
    let cfg = quick_config().with_link_width(LinkWidth::B4);
    let spec = NetworkSpec::with_shortcuts(dims, cfg, vec![Shortcut::new(11, 88)]);
    // Two competing streams from different input ports of router 11.
    let events = vec![
        (0u64, MessageSpec::unicast(1, 88, MessageClass::Memory)),
        (0u64, MessageSpec::unicast(10, 88, MessageClass::Memory)),
        (0u64, MessageSpec::unicast(12, 88, MessageClass::Memory)),
    ];
    let stats = run_scripted(spec, events);
    assert_eq!(stats.completed_messages, 3);
    assert!(!stats.saturated);
    // All three 132B messages crossed the RF channel.
    assert_eq!(stats.activity.rf_bytes, 3 * 132);
}

#[test]
fn mc_arbitration_makes_non_owner_wait() {
    // Two clusters; the broadcast channel rotates ownership every 200
    // cycles. A multicast from the cluster that owns the channel at cycle
    // 0 starts immediately; one from the other cluster waits for its
    // epoch.
    let dims = GridDims::new(4, 4);
    let receivers: Vec<usize> = (0..16).collect();
    let serving = McConfig::serving_map(dims, &receivers);
    let mut cluster_of = vec![None; 16];
    cluster_of[5] = Some(0);
    cluster_of[10] = Some(1);
    let mc = McConfig {
        transmitters: vec![5, 10],
        cluster_of,
        receivers,
        serving,
        epoch_cycles: 200,
        rf_flit_bytes: 16,
    };
    let mut spec = NetworkSpec::mesh_baseline(dims, quick_config());
    spec.multicast = MulticastMode::Rf;
    spec.mc = Some(mc);
    let dests = DestSet::from_nodes([0, 15]);
    let owner = run_scripted(spec.clone(), vec![(0, MessageSpec::multicast(5, dests))]);
    let waiter = run_scripted(spec, vec![(0, MessageSpec::multicast(10, dests))]);
    assert_eq!(owner.completed_messages, 1);
    assert_eq!(waiter.completed_messages, 1);
    assert!(
        waiter.avg_message_latency() > owner.avg_message_latency() + 100.0,
        "non-owner ({}) should wait ~an epoch vs owner ({})",
        waiter.avg_message_latency(),
        owner.avg_message_latency()
    );
}

#[test]
fn local_port_speedup_raises_ejection_throughput() {
    // 20 single-hop messages into one router: with speedup 2 the sink
    // drains twice as fast.
    let dims = GridDims::new(4, 4);
    let events: Vec<(u64, MessageSpec)> = (0..20)
        .map(|i| (i as u64, MessageSpec::unicast((i % 2) * 2, 1, MessageClass::Data)))
        .collect();
    let run_with = |speedup: u32| {
        let mut cfg = quick_config();
        cfg.local_port_speedup = speedup;
        run_scripted(NetworkSpec::mesh_baseline(dims, cfg), events.clone())
    };
    let slow = run_with(1);
    let fast = run_with(2);
    assert_eq!(slow.completed_messages, 20);
    assert_eq!(fast.completed_messages, 20);
    assert!(
        fast.avg_message_latency() < slow.avg_message_latency(),
        "speedup 2 ({}) should beat speedup 1 ({})",
        fast.avg_message_latency(),
        slow.avg_message_latency()
    );
}

#[test]
fn multicast_histogram_uses_mean_distance() {
    let dims = GridDims::new(4, 4);
    // dests at distances 2 and 4 from node 0 → mean 3
    let dests = DestSet::from_nodes([5, 10]);
    let stats = run_scripted(
        NetworkSpec::mesh_baseline(dims, quick_config()),
        vec![(0, MessageSpec::multicast(0, dests))],
    );
    assert_eq!(stats.distance_histogram[3], 1);
}

#[test]
fn contended_shortcut_traffic_detours_over_mesh() {
    // Many simultaneous streams all wanting the single 0->99 shortcut.
    // With adaptive shortcut routing (default), blocked packets take the
    // mesh; everything completes and the mesh carries real traffic.
    let dims = GridDims::new(10, 10);
    let mut events = Vec::new();
    for burst in 0..10u64 {
        for src in [0usize, 1, 10, 11] {
            events.push((burst, MessageSpec::unicast(src, 99, MessageClass::Memory)));
        }
    }
    let adaptive = run_scripted(
        NetworkSpec::with_shortcuts(dims, quick_config(), vec![Shortcut::new(0, 99)]),
        events.clone(),
    );
    assert_eq!(adaptive.completed_messages, 40);
    assert!(!adaptive.saturated);
    assert!(adaptive.activity.rf_bytes > 0, "shortcut used");
    assert!(
        adaptive.activity.link_byte_hops > 0,
        "contention must push some traffic onto the mesh"
    );

    // With the detour disabled, everything funnels through the shortcut
    // (or the slow escape path) — more RF bytes, longer latency.
    let mut cfg = quick_config();
    cfg.adaptive_shortcut_routing = false;
    let strict = run_scripted(
        NetworkSpec::with_shortcuts(dims, cfg, vec![Shortcut::new(0, 99)]),
        events,
    );
    assert_eq!(strict.completed_messages, 40);
    assert!(
        adaptive.avg_message_latency() <= strict.avg_message_latency() + 1.0,
        "adaptive routing ({}) should not lose to strict ({})",
        adaptive.avg_message_latency(),
        strict.avg_message_latency()
    );
}

#[test]
fn escape_only_configuration_still_delivers() {
    // With zero adaptive VCs every packet rides the escape (XY) network.
    let dims = GridDims::new(6, 6);
    let mut cfg = quick_config();
    cfg.vcs_adaptive = 0;
    let events: Vec<(u64, MessageSpec)> = (0..50u64)
        .map(|i| {
            let src = (i * 7 % 36) as usize;
            let dst = (35 + i as usize * 5) % 36;
            let dst = if dst == src { (dst + 1) % 36 } else { dst };
            (i, MessageSpec::unicast(src, dst, MessageClass::Data))
        })
        .collect();
    let stats = run_scripted(NetworkSpec::mesh_baseline(dims, cfg), events);
    assert_eq!(stats.completed_messages, 50);
    assert!(!stats.saturated);
}

#[test]
fn vct_delivers_full_payload_to_every_destination() {
    let dims = GridDims::new(6, 6);
    // A spread-out destination set forcing several forks.
    let dests = DestSet::from_nodes([5, 30, 35, 17, 23]);
    let stats = run_scripted(vct_spec(dims), vec![(0, MessageSpec::multicast(0, dests))]);
    assert_eq!(stats.completed_messages, 1);
    // Every destination ejects all 3 flits of the 39B message.
    assert_eq!(stats.ejected_flits, 5 * 3);
}

#[test]
fn vct_fork_heavy_sets_complete_under_load() {
    let dims = GridDims::new(6, 6);
    let mut events = Vec::new();
    for i in 0..30u64 {
        let dests = DestSet::from_nodes([
            (i as usize % 6) + 30,
            (i as usize % 5) + 6,
            35 - (i as usize % 7),
        ]);
        events.push((i * 2, MessageSpec::multicast((i as usize * 3) % 36, dests)));
    }
    let stats = run_scripted(vct_spec(dims), events);
    assert_eq!(stats.completed_messages, 30);
    assert!(!stats.saturated);
}

#[test]
fn rf_port_capacity_matches_width() {
    // At 8B the 16B RF channel moves two flits per cycle: a long message
    // over the shortcut finishes faster per-byte than at capacity 1.
    let dims = GridDims::new(10, 10);
    let run_width = |width: LinkWidth| {
        let cfg = quick_config().with_link_width(width);
        let spec = NetworkSpec::with_shortcuts(dims, cfg, vec![Shortcut::new(0, 99)]);
        run_scripted(spec, vec![(0, MessageSpec::unicast(0, 99, MessageClass::Memory))])
    };
    let s16 = run_width(LinkWidth::B16);
    let s8 = run_width(LinkWidth::B8);
    // 132B: 9 flits @16B vs 17 flits @8B, but the RF hop moves 2 narrow
    // flits/cycle, so the 8B penalty stays bounded (injection serialises
    // at 1 flit/cycle per VC).
    assert!(s8.avg_message_latency() < s16.avg_message_latency() + 15.0);
}

#[test]
fn run_without_warmup_or_drain_is_clean() {
    let dims = GridDims::new(4, 4);
    let mut cfg = quick_config();
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 50;
    cfg.drain_cycles = 1_000;
    let stats = run_scripted(
        NetworkSpec::mesh_baseline(dims, cfg),
        vec![(40, MessageSpec::unicast(0, 15, MessageClass::Data))],
    );
    // Injected inside the window, drains after it.
    assert_eq!(stats.injected_messages, 1);
    assert_eq!(stats.completed_messages, 1);
    assert!(stats.end_cycle > 50);
}

#[test]
fn port_utilization_reflects_traffic() {
    let dims = GridDims::new(4, 4);
    let events: Vec<(u64, MessageSpec)> = (0..40)
        .map(|i| (i as u64, MessageSpec::unicast(0, 3, MessageClass::Data)))
        .collect();
    let stats = run_scripted(NetworkSpec::mesh_baseline(dims, quick_config()), events);
    // Router 1's east port carries every flit of the stream (XY row 0).
    let east_util = stats.port_utilization(1, 2, 1);
    assert!(east_util > 0.05, "east port utilization {east_util}");
    let (hot_r, _, _) = stats.hottest_port().expect("traffic moved");
    assert!(hot_r <= 3, "hottest port must be on row 0, got router {hot_r}");
    // An idle router's ports are silent.
    assert_eq!(stats.port_utilization(12, 2, 1), 0.0);
}

#[test]
fn rf_multicast_with_sparse_receivers_serves_all_cores() {
    // Only 4 receivers on a 4x4 mesh: each serves several routers, so
    // most deliveries need a local mesh hop from the receiver.
    let dims = GridDims::new(4, 4);
    let receivers = vec![0usize, 3, 12, 15];
    let serving = McConfig::serving_map(dims, &receivers);
    let mut cluster_of = vec![None; 16];
    cluster_of[5] = Some(0);
    let mc = McConfig {
        transmitters: vec![5],
        cluster_of,
        receivers,
        serving,
        epoch_cycles: 100,
        rf_flit_bytes: 16,
    };
    let mut spec = NetworkSpec::mesh_baseline(dims, quick_config());
    spec.multicast = MulticastMode::Rf;
    spec.mc = Some(mc);
    // every router except the transmitter is a destination
    let dests = DestSet::from_nodes((0..16).filter(|&r| r != 5));
    let stats = run_scripted(spec, vec![(0, MessageSpec::multicast(5, dests))]);
    assert_eq!(stats.completed_messages, 1);
    // local-distribution packets moved over the mesh
    assert!(stats.activity.link_byte_hops > 0);
}

#[test]
fn band_plan_matches_built_shortcut_set() {
    use rfnoc_sim::bands::{BandPlan, RfBudget, Tuning};
    let shortcuts = vec![Shortcut::new(0, 99), Shortcut::new(45, 54)];
    let plan = BandPlan::new(RfBudget::paper_default(), &shortcuts, &[2, 4]).unwrap();
    assert_eq!(plan.tx_tuning(0), Tuning::Shortcut(0));
    assert_eq!(plan.rx_tuning(54), Tuning::Shortcut(1));
    assert_eq!(plan.rx_tuning(4), Tuning::Broadcast);
    assert_eq!(plan.bands_used(), 3);
    // The same shortcut set drives a simulatable network.
    let spec = NetworkSpec::with_shortcuts(GridDims::new(10, 10), quick_config(), shortcuts);
    let stats = run_scripted(
        spec,
        vec![(0, MessageSpec::unicast(0, 99, MessageClass::Data))],
    );
    assert_eq!(stats.completed_messages, 1);
}

#[test]
fn hop_accounting_matches_route_lengths() {
    let dims = GridDims::new(10, 10);
    // Pure mesh XY: 0 -> 99 is exactly 18 hops.
    let stats = run_scripted(
        NetworkSpec::mesh_baseline(dims, quick_config()),
        vec![(0, MessageSpec::unicast(0, 99, MessageClass::Data))],
    );
    assert_eq!(stats.hop_packets, 1);
    assert_eq!(stats.hops_sum, 18);
    assert_eq!(stats.avg_hops(), 18.0);
    // With a direct shortcut the same pair is one hop.
    let rf = run_scripted(
        NetworkSpec::with_shortcuts(dims, quick_config(), vec![Shortcut::new(0, 99)]),
        vec![(0, MessageSpec::unicast(0, 99, MessageClass::Data))],
    );
    assert_eq!(rf.avg_hops(), 1.0);
}

#[test]
fn live_reconfiguration_retunes_shortcuts_mid_run() {
    // Start with a shortcut 0->99; drive traffic over it, then retune to
    // 90->9 while traffic keeps flowing. Both phases must complete, the
    // reconfiguration must be counted, and post-retune traffic must ride
    // the new shortcut.
    let dims = GridDims::new(10, 10);
    let mut cfg = quick_config();
    cfg.measure_cycles = 4_000;
    let spec = NetworkSpec::with_shortcuts(dims, cfg, vec![Shortcut::new(0, 99)]);
    let mut network = Network::new(spec);

    // Phase 1: traffic using the 0->99 shortcut.
    let mut phase1 = ScriptedWorkload::new(
        (0..20u64)
            .map(|i| (i * 3, MessageSpec::unicast(0, 99, MessageClass::Data)))
            .collect(),
    );
    let mut buf = Vec::new();
    for _ in 0..400 {
        buf.clear();
        phase1.messages_at(network.cycle(), &mut buf);
        for m in buf.drain(..) {
            network.inject_message(m);
        }
        network.step();
    }
    let rf_bytes_phase1 = {
        // peek at counters through a fresh run? use reconfigurations API +
        // later assertions instead; here just retune.
        network.reconfigure(vec![Shortcut::new(90, 9)]).expect("legal retune accepted");
        0
    };
    let _ = rf_bytes_phase1;
    // Let the drain + 99-cycle table rewrite complete.
    for _ in 0..400 {
        network.step();
    }
    assert_eq!(network.reconfigurations(), 1, "retuning must complete");

    // Phase 2: traffic for the new shortcut; it must arrive fast (1 RF hop).
    let mut phase2 = ScriptedWorkload::new(
        (0..10u64)
            .map(|i| (network.cycle() + i * 3, MessageSpec::unicast(90, 9, MessageClass::Data)))
            .collect(),
    );
    for _ in 0..600 {
        buf.clear();
        phase2.messages_at(network.cycle(), &mut buf);
        for m in buf.drain(..) {
            network.inject_message(m);
        }
        network.step();
    }
    let stats = {
        // drive to quiescence and collect
        for _ in 0..2_000 {
            network.step();
        }
        network.run(&mut ScriptedWorkload::default())
    };
    assert_eq!(stats.completed_messages, 30, "both phases fully delivered");
    assert!(!stats.saturated);
    // Post-retune messages 90->9 must have used the new single-hop path:
    // average hops over all 30 messages = (20*1 + 10*1)/30 = 1 if both
    // shortcut generations worked.
    assert!(
        stats.avg_hops() < 2.0,
        "both shortcut generations should give ~1-hop routes, got {}",
        stats.avg_hops()
    );
}

#[test]
fn reconfigure_rejected_on_xy_network() {
    let dims = GridDims::new(4, 4);
    let mut network = Network::new(NetworkSpec::mesh_baseline(dims, quick_config()));
    let err = network.reconfigure(vec![Shortcut::new(0, 15)]);
    assert_eq!(err, Err(ReconfigError::XyRouting));
    assert!(err.unwrap_err().to_string().contains("requires shortest-path"));
}

#[test]
fn reconfigure_rejects_self_loops_and_double_booked_ports() {
    let dims = GridDims::new(4, 4);
    let spec = NetworkSpec::with_shortcuts(dims, quick_config(), vec![Shortcut::new(0, 15)]);
    let mut network = Network::new(spec);
    assert_eq!(
        network.reconfigure(vec![Shortcut::new(7, 7)]),
        Err(ReconfigError::SelfLoop { router: 7 }),
        "the seed accepted self-loop shortcuts silently; they must be rejected"
    );
    assert_eq!(
        network.reconfigure(vec![Shortcut::new(1, 5), Shortcut::new(1, 9)]),
        Err(ReconfigError::DuplicateSource { router: 1 })
    );
    assert_eq!(
        network.reconfigure(vec![Shortcut::new(1, 5), Shortcut::new(9, 5)]),
        Err(ReconfigError::DuplicateDest { router: 5 })
    );
    assert_eq!(
        network.reconfigure(vec![Shortcut::new(0, 99)]),
        Err(ReconfigError::EndpointOutOfRange { src: 0, dst: 99 })
    );
    // A rejected request leaves the network reconfigurable.
    network.reconfigure(vec![Shortcut::new(3, 12)]).expect("legal set accepted");
    assert_eq!(
        network.reconfigure(vec![Shortcut::new(0, 15)]),
        Err(ReconfigError::InProgress)
    );
}

#[test]
fn self_loop_shortcut_rejected_at_build() {
    let dims = GridDims::new(4, 4);
    let spec =
        NetworkSpec::with_shortcuts(dims, quick_config(), vec![Shortcut::new(5, 5)]);
    match Network::try_new(spec) {
        Err(SimError::Shortcuts(ReconfigError::SelfLoop { router: 5 })) => {}
        other => panic!("expected self-loop rejection, got {other:?}"),
    }
}

#[test]
fn flit_trace_follows_pipeline_timing() {
    use rfnoc_sim::{FlitEvent, FlitEventKind};
    let dims = GridDims::new(4, 4);
    let mut cfg = quick_config();
    cfg.flit_trace = rfnoc_sim::FlitTraceConfig::capped(256);
    let mut network = Network::new(NetworkSpec::mesh_baseline(dims, cfg));
    let mut workload = ScriptedWorkload::new(vec![(
        0,
        MessageSpec::unicast(0, 3, MessageClass::Request),
    )]);
    network.run(&mut workload);
    let trace: Vec<FlitEvent> = network.flit_trace().to_vec();
    // One 7B request at 16B = a single head/tail flit:
    // injected at 0, granted at routers 0,1,2, ejected at 3.
    let head: Vec<&FlitEvent> = trace.iter().filter(|e| e.flit == 0).collect();
    assert_eq!(head.len(), 5, "trace: {head:?}");
    assert_eq!(head[0].kind, FlitEventKind::Injected);
    assert_eq!(head[0].router, 0);
    for (i, e) in head[1..4].iter().enumerate() {
        assert_eq!(e.router, i, "grant {i}");
        assert!(matches!(e.kind, FlitEventKind::Granted { .. }));
    }
    assert_eq!(head[4].kind, FlitEventKind::Ejected);
    assert_eq!(head[4].router, 3);
    // Per-hop spacing of a head flit is the 5-cycle pipeline.
    for pair in head[1..4].windows(2) {
        assert_eq!(pair[1].cycle - pair[0].cycle, 5, "head pipeline spacing");
    }
}

#[test]
fn flit_trace_respects_cap_and_default_off() {
    let dims = GridDims::new(4, 4);
    let mut network = Network::new(NetworkSpec::mesh_baseline(dims, quick_config()));
    let mut w = ScriptedWorkload::new(vec![(0, MessageSpec::unicast(0, 15, MessageClass::Memory))]);
    network.run(&mut w);
    assert!(network.flit_trace().is_empty(), "tracing defaults off");

    let mut cfg = quick_config();
    cfg.flit_trace = rfnoc_sim::FlitTraceConfig::capped(7);
    let mut network = Network::new(NetworkSpec::mesh_baseline(dims, cfg));
    let mut w = ScriptedWorkload::new(vec![(0, MessageSpec::unicast(0, 15, MessageClass::Memory))]);
    network.run(&mut w);
    assert_eq!(network.flit_trace().len(), 7, "cap respected");
}

#[test]
fn latency_percentiles_are_consistent() {
    let dims = GridDims::new(6, 6);
    let events: Vec<(u64, MessageSpec)> = (0..100u64)
        .map(|i| {
            let src = (i * 7 % 36) as usize;
            let dst = (i as usize * 11 + 1) % 36;
            let dst = if dst == src { (dst + 1) % 36 } else { dst };
            (i, MessageSpec::unicast(src, dst, MessageClass::Data))
        })
        .collect();
    let stats = run_scripted(NetworkSpec::mesh_baseline(dims, quick_config()), events);
    assert_eq!(stats.message_latencies.len(), 100);
    let p0 = stats.latency_percentile(0.0);
    let p50 = stats.latency_percentile(50.0);
    let p99 = stats.latency_percentile(99.0);
    let p100 = stats.latency_percentile(100.0);
    assert!(p0 <= p50 && p50 <= p99 && p99 <= p100);
    assert!(p50 > 0.0);
    // mean lies between min and max
    let mean = stats.avg_message_latency();
    assert!(p0 <= mean && mean <= p100);
    // max equals the largest individual latency
    assert_eq!(p100 as u32, *stats.message_latencies.iter().max().unwrap());
}
