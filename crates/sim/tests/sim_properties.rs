//! Property-based stress tests of the simulator engine.

use proptest::prelude::*;
use rfnoc_power::LinkWidth;
use rfnoc_sim::{
    DestSet, MessageClass, MessageSpec, MulticastMode, Network, NetworkSpec, ScriptedWorkload,
    SimConfig, VctConfig,
};
use rfnoc_topology::{GridDims, Shortcut};

fn quick_config(width: LinkWidth) -> SimConfig {
    let mut cfg = SimConfig::paper_baseline().with_link_width(width);
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 3_000;
    cfg.drain_cycles = 40_000;
    cfg
}

/// Builds a legal shortcut set from arbitrary candidate pairs.
fn legalize(n: usize, candidates: &[(usize, usize)]) -> Vec<Shortcut> {
    let mut out_used = vec![false; n];
    let mut in_used = vec![false; n];
    let mut set = Vec::new();
    for &(a, b) in candidates {
        let (a, b) = (a % n, b % n);
        if a != b && !out_used[a] && !in_used[b] {
            out_used[a] = true;
            in_used[b] = true;
            set.push(Shortcut::new(a, b));
        }
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Any mix of unicasts and VCT multicasts over any legal shortcut-free
    /// mesh completes with exact message conservation.
    #[test]
    fn mixed_unicast_vct_conserves_messages(
        unicasts in proptest::collection::vec((0usize..36, 0usize..36), 0..40),
        multicasts in proptest::collection::vec(
            (0usize..36, proptest::collection::hash_set(0usize..36, 1..8)),
            0..10,
        ),
    ) {
        let dims = GridDims::new(6, 6);
        let mut events = Vec::new();
        let mut expected = 0u64;
        for (i, (s, d)) in unicasts.iter().enumerate() {
            if s != d {
                events.push((i as u64, MessageSpec::unicast(*s, *d, MessageClass::Data)));
                expected += 1;
            }
        }
        for (i, (s, dests)) in multicasts.iter().enumerate() {
            let set = DestSet::from_nodes(dests.iter().copied());
            events.push((i as u64 * 2, MessageSpec::multicast(*s, set)));
            expected += 1;
        }
        let mut spec = NetworkSpec::mesh_baseline(dims, quick_config(LinkWidth::B16));
        spec.multicast = MulticastMode::Vct(VctConfig::default());
        let mut network = Network::new(spec);
        let stats = network.run(&mut ScriptedWorkload::new(events));
        prop_assert_eq!(stats.completed_messages, expected);
        prop_assert!(!stats.saturated);
    }

    /// Random legal shortcut sets never break delivery at any width, and
    /// never make any message slower than the worst-case mesh route bound.
    #[test]
    fn random_shortcuts_preserve_delivery(
        candidates in proptest::collection::vec((0usize..36, 0usize..36), 0..8),
        msgs in proptest::collection::vec((0usize..36, 0usize..36), 1..30),
        width_idx in 0usize..3,
    ) {
        let dims = GridDims::new(6, 6);
        let width = LinkWidth::all()[width_idx];
        let shortcuts = legalize(36, &candidates);
        let spec = if shortcuts.is_empty() {
            NetworkSpec::mesh_baseline(dims, quick_config(width))
        } else {
            NetworkSpec::with_shortcuts(dims, quick_config(width), shortcuts)
        };
        let events: Vec<(u64, MessageSpec)> = msgs
            .iter()
            .enumerate()
            .filter(|(_, (s, d))| s != d)
            .map(|(i, (s, d))| (i as u64, MessageSpec::unicast(*s, *d, MessageClass::Data)))
            .collect();
        let expected = events.len() as u64;
        let mut network = Network::new(spec);
        let stats = network.run(&mut ScriptedWorkload::new(events));
        prop_assert_eq!(stats.completed_messages, expected);
        prop_assert!(!stats.saturated);
        // Zero-load-ish sanity bound: diameter 10, worst head pipeline
        // 5*(10+1), 33 flits max, generous queueing slack at this load.
        prop_assert!(stats.avg_message_latency() < 400.0);
    }

    /// Determinism holds across every width and shortcut set: identical
    /// runs give identical statistics.
    #[test]
    fn determinism_over_configs(
        candidates in proptest::collection::vec((0usize..36, 0usize..36), 0..6),
        width_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let dims = GridDims::new(6, 6);
        let width = LinkWidth::all()[width_idx];
        let shortcuts = legalize(36, &candidates);
        let mut rng = StdRng::seed_from_u64(seed);
        let events: Vec<(u64, MessageSpec)> = (0..60)
            .map(|i| {
                let s = rng.gen_range(0..36);
                let mut d = rng.gen_range(0..36);
                if d == s {
                    d = (d + 1) % 36;
                }
                (i / 2, MessageSpec::unicast(s, d, MessageClass::Request))
            })
            .collect();
        let build = || {
            let spec = if shortcuts.is_empty() {
                NetworkSpec::mesh_baseline(dims, quick_config(width))
            } else {
                NetworkSpec::with_shortcuts(dims, quick_config(width), shortcuts.clone())
            };
            Network::new(spec)
        };
        let a = build().run(&mut ScriptedWorkload::new(events.clone()));
        let b = build().run(&mut ScriptedWorkload::new(events));
        prop_assert_eq!(a, b);
    }
}
