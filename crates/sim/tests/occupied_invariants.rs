//! Single-stepped invariant checks for the engine's claimed-VC
//! bookkeeping: [`InputPort::occupied`] must list exactly the claimed
//! VCs (no duplicates, no stale entries) at every cycle boundary, across
//! unicast, adaptive-RF, multicast (tree and RF broadcast), fault, and
//! reconfiguration traffic. `Network::debug_validate` also asserts the
//! active-set coverage invariant: any router with pending work is
//! scheduled for the next visit.

use rfnoc_sim::{
    DestSet, FaultEvent, FaultPlan, McConfig, MessageClass, MessageSpec, MulticastMode, Network,
    NetworkSpec, SimConfig, VctConfig,
};
use rfnoc_topology::{GridDims, Shortcut};

const DIMS: (usize, usize) = (6, 6);

fn dims() -> GridDims {
    GridDims::new(DIMS.0, DIMS.1)
}

fn cfg() -> SimConfig {
    let mut cfg = SimConfig::paper_baseline();
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = u64::MAX; // irrelevant: we single-step
    cfg
}

fn shortcuts() -> Vec<Shortcut> {
    let d = dims();
    let n = d.nodes();
    vec![
        Shortcut::new(0, n - 1),
        Shortcut::new(n - 1, 0),
        Shortcut::new(d.width() - 1, n - d.width()),
        Shortcut::new(n - d.width(), d.width() - 1),
    ]
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Drives `net` for `cycles` cycles at roughly `load_256`/256 unicasts
/// per node per cycle (plus one multicast per `mc_every` messages when
/// non-zero), validating the bookkeeping after every single step, then
/// drains with validation until the network goes idle.
fn drive(mut net: Network, seed: u64, load_256: u64, cycles: u64, mc_every: u64) {
    let n = net.dims().nodes();
    let mut rng = Rng(seed);
    let mut emitted = 0u64;
    for _ in 0..cycles {
        for src in 0..n {
            if rng.next() % 256 >= load_256 {
                continue;
            }
            emitted += 1;
            if mc_every > 0 && emitted.is_multiple_of(mc_every) {
                let mut dests = DestSet::empty();
                while dests.len() < 4 {
                    let d = (rng.next() % n as u64) as usize;
                    if d != src {
                        dests.insert(d);
                    }
                }
                net.inject_message(MessageSpec::multicast(src, dests));
                continue;
            }
            let mut dst = (rng.next() % n as u64) as usize;
            if dst == src {
                dst = (dst + 1) % n;
            }
            let class = match rng.next() % 3 {
                0 => MessageClass::Request,
                1 => MessageClass::Data,
                _ => MessageClass::Memory,
            };
            net.inject_message(MessageSpec::unicast(src, dst, class));
        }
        net.step();
        net.debug_validate();
    }
    // Drain: with injection stopped every wormhole must retire, leaving
    // every VC released (checked by debug_validate each cycle) and no
    // injection backlog.
    for _ in 0..20_000 {
        net.step();
        net.debug_validate();
        if net.injection_backlog() == 0 {
            break;
        }
    }
    assert_eq!(net.injection_backlog(), 0, "network failed to drain");
}

#[test]
fn occupied_consistent_mesh_unicast() {
    let net = Network::new(NetworkSpec::mesh_baseline(dims(), cfg()));
    drive(net, 0x0cc_0001, 32, 600, 0);
}

#[test]
fn occupied_consistent_under_saturation() {
    let net = Network::new(NetworkSpec::mesh_baseline(dims(), cfg()));
    drive(net, 0x0cc_0002, 128, 400, 0);
}

#[test]
fn occupied_consistent_rf_adaptive() {
    let net = Network::new(NetworkSpec::with_shortcuts(dims(), cfg(), shortcuts()));
    drive(net, 0x0cc_0003, 48, 600, 0);
}

#[test]
fn occupied_consistent_vct_multicast() {
    let mut spec = NetworkSpec::mesh_baseline(dims(), cfg());
    spec.multicast = MulticastMode::Vct(VctConfig::default());
    // Multicast retire paths exercise release-under-fanout: a VC frees
    // only after the front flit reaches every branch.
    drive(Network::new(spec), 0x0cc_0004, 24, 600, 3);
}

#[test]
fn occupied_consistent_rf_broadcast() {
    let d = dims();
    let receivers: Vec<usize> = (0..d.nodes()).filter(|i| i % 3 == 0).collect();
    let serving = McConfig::serving_map(d, &receivers);
    let transmitters = vec![7usize, 10, 25, 28];
    let mut cluster_of = vec![None; d.nodes()];
    for (cluster, &tx) in transmitters.iter().enumerate() {
        cluster_of[tx] = Some(cluster);
        cluster_of[tx + 1] = Some(cluster);
    }
    let mc = McConfig {
        transmitters,
        cluster_of,
        receivers,
        serving,
        epoch_cycles: 500,
        rf_flit_bytes: 16,
    };
    let mut spec = NetworkSpec::mesh_baseline(d, cfg());
    spec.multicast = MulticastMode::Rf;
    spec.mc = Some(mc);
    drive(Network::new(spec), 0x0cc_0005, 24, 600, 3);
}

#[test]
fn occupied_consistent_through_faults() {
    let n = dims().nodes();
    let plan = FaultPlan::new(vec![
        (100, FaultEvent::ShortcutDown { src: 0 }),
        (180, FaultEvent::MeshLinkDown { a: 14, b: 15 }),
        (260, FaultEvent::LinkGlitch { a: 8, b: 14 }),
        (340, FaultEvent::ShortcutUp { src: 0, dst: n - 1 }),
        (420, FaultEvent::MeshLinkUp { a: 14, b: 15 }),
    ]);
    let spec = NetworkSpec::with_shortcuts(dims(), cfg(), shortcuts()).with_fault_plan(plan);
    drive(Network::new(spec), 0x0cc_0006, 32, 600, 0);
}

#[test]
fn occupied_consistent_through_reconfiguration() {
    let mut net = Network::new(NetworkSpec::with_shortcuts(dims(), cfg(), shortcuts()));
    net.reconfigure(vec![Shortcut::new(2, 33), Shortcut::new(33, 2)]).expect("legal retune");
    drive(net, 0x0cc_0007, 32, 600, 0);
}
