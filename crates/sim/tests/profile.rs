//! Integration tests of the delay-attribution profiler: hop-chain shape,
//! exact reconciliation of the latency decomposition against end-to-end
//! latency across mesh-only, RF-static, and RF-multicast configurations,
//! contention-blame accounting, and inertness of the profile hooks.

use rfnoc_sim::{
    ChannelMask, DestSet, HopRecord, McConfig, MessageClass, MessageSpec, MulticastMode,
    Network, NetworkSpec, RunStats, ScriptedWorkload, SimConfig, TelemetryConfig,
    HOP_ROUTE_CYCLES, HOP_SWITCH_CYCLES,
};
use rfnoc_topology::{GridDims, Shortcut};

/// Local/ejection port index (N,S,E,W,Local,RF — mirrors the router).
const PORT_LOCAL: u8 = 4;
const PORT_RF: u8 = 5;

fn profiled_config() -> SimConfig {
    let mut cfg = SimConfig::paper_baseline();
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 1_500;
    cfg.drain_cycles = 30_000;
    cfg.telemetry = Some(TelemetryConfig::profiling(250));
    cfg
}

/// A deterministic all-to-all-ish unicast stream.
fn stream(n: usize, count: u64, period: u64) -> Vec<(u64, MessageSpec)> {
    (0..count)
        .map(|i| {
            let src = (i as usize * 7) % n;
            let dst = (i as usize * 11 + 1) % n;
            let dst = if dst == src { (dst + 1) % n } else { dst };
            (i * period, MessageSpec::unicast(src, dst, MessageClass::Data))
        })
        .collect()
}

fn run(spec: NetworkSpec, events: Vec<(u64, MessageSpec)>) -> RunStats {
    let mut network = Network::new(spec);
    network.run(&mut ScriptedWorkload::new(events))
}

/// Asserts the structural invariants of one hop chain and returns the
/// packet's reconciled attribution.
fn check_chain(chain: &[HopRecord]) {
    assert_eq!(chain[0].port_in, PORT_LOCAL, "chain starts at the source's local port");
    assert_eq!(
        chain.last().unwrap().port_out,
        PORT_LOCAL,
        "chain ends at the destination's ejection port"
    );
    for pair in chain.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert_eq!(a.packet, b.packet);
        assert!(
            b.arrived_at >= a.granted_at + 2,
            "next hop arrives after the link traversal: {a:?} -> {b:?}"
        );
    }
    for h in chain {
        assert!(
            h.va_done_at >= h.arrived_at + HOP_ROUTE_CYCLES,
            "VA respects the route-compute pipeline: {h:?}"
        );
        assert!(
            h.granted_at >= h.va_done_at + HOP_SWITCH_CYCLES,
            "SA respects the switch-traversal pipeline: {h:?}"
        );
        assert!(
            u64::from(h.credit_waits) <= h.sa_wait(),
            "credit waits are a subset of the SA wait: {h:?}"
        );
    }
}

/// Every profiled packet's components must sum to its end-to-end latency;
/// returns how many packets were reconciled.
fn assert_reconciles(stats: &RunStats) -> usize {
    let tel = stats.telemetry.as_ref().expect("telemetry enabled");
    assert_eq!(tel.dropped_hops, 0, "hop cap must not truncate this run");
    let mut reconciled = 0;
    for span in tel.spans.iter().filter(|s| s.is_complete()) {
        let chain = tel.hops_of(span.packet);
        if chain.is_empty() {
            continue; // tree-multicast packets carry no hop chain
        }
        check_chain(chain);
        let b = tel
            .attribution(span.packet)
            .expect("complete span with a full chain attributes");
        assert_eq!(
            b.component_sum(),
            b.total,
            "attribution components must partition the latency: {b:?}"
        );
        assert_eq!(b.total, span.latency().unwrap());
        assert_eq!(b.hops, span.hops + 1, "chain length matches the span hop count");
        assert_eq!(b.took_rf, span.took_rf);
        reconciled += 1;
    }
    reconciled
}

#[test]
fn mesh_only_attribution_reconciles() {
    let dims = GridDims::new(6, 6);
    let stats = run(NetworkSpec::mesh_baseline(dims, profiled_config()), stream(36, 300, 2));
    let tel = stats.telemetry.as_ref().unwrap();
    let reconciled = assert_reconciles(&stats);
    assert!(reconciled as u64 >= stats.completed_messages / 2, "most packets profiled");
    assert!(tel.hops.iter().all(|h| h.port_out != PORT_RF), "mesh-only run has no RF hops");
    // Every completed unicast span must attribute on a mesh-only run.
    for span in tel.spans.iter().filter(|s| s.is_complete()) {
        assert!(tel.attribution(span.packet).is_some());
    }
}

#[test]
fn rf_static_attribution_reconciles_and_marks_rf_hops() {
    let dims = GridDims::new(6, 6);
    let n = dims.nodes();
    let shortcuts = vec![Shortcut::new(0, n - 1), Shortcut::new(n - 1, 0)];
    let spec = NetworkSpec::with_shortcuts(dims, profiled_config(), shortcuts);
    // Corner-to-corner traffic rides the shortcuts.
    let mut events = stream(36, 150, 3);
    for i in 0..60u64 {
        events.push((i * 5, MessageSpec::unicast(0, n - 1, MessageClass::Data)));
    }
    events.sort_by_key(|&(t, _)| t);
    let stats = run(spec, events);
    let reconciled = assert_reconciles(&stats);
    assert!(reconciled > 0);
    let tel = stats.telemetry.as_ref().unwrap();
    let rf_hops = tel.hops.iter().filter(|h| h.port_out == PORT_RF).count();
    assert!(rf_hops > 0, "corner traffic must take the shortcut");
    // A packet with an RF hop is marked took_rf and vice versa.
    for span in tel.spans.iter().filter(|s| s.is_complete()) {
        let chain = tel.hops_of(span.packet);
        if !chain.is_empty() {
            assert_eq!(span.took_rf, chain.iter().any(|h| h.port_out == PORT_RF));
        }
    }
}

#[test]
fn rf_multicast_attribution_reconciles_for_unicast_chains() {
    let dims = GridDims::new(6, 6);
    let receivers: Vec<usize> = (0..dims.nodes()).filter(|i| i % 2 == 0).collect();
    let serving = McConfig::serving_map(dims, &receivers);
    let transmitters = vec![7, 10, 25, 28];
    let mut cluster_of = vec![None; dims.nodes()];
    for (cluster, &tx) in transmitters.iter().enumerate() {
        cluster_of[tx] = Some(cluster);
        cluster_of[tx + 1] = Some(cluster);
    }
    let mc = McConfig {
        transmitters,
        cluster_of,
        receivers,
        serving,
        epoch_cycles: 500,
        rf_flit_bytes: 16,
    };
    let mut spec = NetworkSpec::mesh_baseline(dims, profiled_config());
    spec.multicast = MulticastMode::Rf;
    spec.mc = Some(mc);
    let mut events = stream(36, 150, 3);
    for i in 0..30u64 {
        // Multicasts from a cluster member (8) and a plain core (13).
        let src = if i % 2 == 0 { 8 } else { 13 };
        let set = DestSet::from_nodes([2, 4, 20, 30]);
        events.push((i * 11, MessageSpec::multicast(src, set)));
    }
    events.sort_by_key(|&(t, _)| t);
    let stats = run(spec, events);
    let reconciled = assert_reconciles(&stats);
    assert!(reconciled > 0, "unicast chains reconcile alongside RF multicast traffic");
}

/// Contention blame conserves stall cycles: summing blame over every
/// output port equals summing VA+SA waits over every recorded hop.
#[test]
fn contention_blame_conserves_stall_cycles() {
    let dims = GridDims::new(6, 6);
    // A hot destination so VA/SA contention actually appears.
    let events: Vec<(u64, MessageSpec)> = (0..400u64)
        .map(|i| {
            let src = (i as usize * 5 + 1) % 36;
            let src = if src == 14 { 15 } else { src };
            (i, MessageSpec::unicast(src, 14, MessageClass::Data))
        })
        .collect();
    let stats = run(NetworkSpec::mesh_baseline(dims, profiled_config()), events);
    let tel = stats.telemetry.as_ref().unwrap();
    let blame = tel.contention_blame();
    assert_eq!(blame.len(), tel.routers * 6);
    let from_hops: u64 = tel.hops.iter().map(|h| h.va_wait() + h.sa_wait()).sum();
    assert_eq!(blame.iter().sum::<u64>(), from_hops, "each stall cycle blamed exactly once");
    assert!(from_hops > 0, "a hotspot run must show contention");
    // The hotspot's ejection port carries blame.
    assert!(blame[14 * 6 + PORT_LOCAL as usize] > 0);
}

/// The profile channel observes without disturbing: aggregate results are
/// bit-identical with profiling on, off, and with telemetry absent.
#[test]
fn profiling_is_inert() {
    let dims = GridDims::new(6, 6);
    let runs: Vec<RunStats> = [None, Some(TelemetryConfig::every(250)), Some(TelemetryConfig::profiling(250))]
        .into_iter()
        .map(|tel| {
            let mut cfg = profiled_config();
            cfg.telemetry = tel;
            run(NetworkSpec::mesh_baseline(dims, cfg), stream(36, 300, 2))
        })
        .collect();
    for r in &runs[1..] {
        assert_eq!(r.completed_messages, runs[0].completed_messages);
        assert_eq!(r.message_latency_sum, runs[0].message_latency_sum);
        assert_eq!(r.flit_latency_sum, runs[0].flit_latency_sum);
        assert_eq!(r.port_flits, runs[0].port_flits);
        assert_eq!(r.end_cycle, runs[0].end_cycle);
    }
    // The ALL-channel run records no hops; the profiling run does.
    let plain = runs[1].telemetry.as_ref().unwrap();
    assert!(plain.hops.is_empty());
    assert!(!plain.channels.contains(ChannelMask::PROFILE));
    let profiled = runs[2].telemetry.as_ref().unwrap();
    assert!(!profiled.hops.is_empty());
    assert!(profiled.channels.contains(ChannelMask::PROFILE));
}

/// The hop cap truncates visibly, never silently.
#[test]
fn hop_cap_counts_dropped_hops() {
    let dims = GridDims::new(4, 4);
    let mut cfg = profiled_config();
    cfg.telemetry = Some(TelemetryConfig {
        hop_limit: 4,
        ..TelemetryConfig::profiling(250)
    });
    let stats = run(NetworkSpec::mesh_baseline(dims, cfg), stream(16, 40, 3));
    let tel = stats.telemetry.as_ref().unwrap();
    assert_eq!(tel.hops.len(), 4, "cap respected");
    assert!(tel.dropped_hops > 0, "overflow counted");
}
