//! Integration tests of the run ledger: inertness (identical statistics
//! with the ledger on or off, serial and sharded, through fault storms),
//! heartbeat tiling and monotonicity, shard-metric reconciliation against
//! the engine's active-router visits, JSONL rendering of every record,
//! and timeline-event mirroring.

use rfnoc_sim::{
    FaultEvent, FaultPlan, LedgerConfig, LedgerRecord, MessageClass, MessageSpec, Network,
    NetworkSpec, RunStats, SimConfig, TimelineEventKind, Workload,
};
use rfnoc_topology::{GridDims, Shortcut};

/// Deterministic xorshift unicast traffic (the golden-suite workload).
struct SyntheticWorkload {
    state: u64,
    nodes: usize,
    load_256: u64,
    until: u64,
}

impl SyntheticWorkload {
    fn new(seed: u64, nodes: usize, load_256: u64, until: u64) -> Self {
        Self { state: seed, nodes, load_256, until }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

impl Workload for SyntheticWorkload {
    fn messages_at(&mut self, cycle: u64, out: &mut Vec<MessageSpec>) {
        if cycle >= self.until {
            return;
        }
        for src in 0..self.nodes {
            if self.next() % 256 >= self.load_256 {
                continue;
            }
            let mut dst = (self.next() % self.nodes as u64) as usize;
            if dst == src {
                dst = (dst + 1) % self.nodes;
            }
            out.push(MessageSpec::unicast(src, dst, MessageClass::Data));
        }
    }
}

fn base_config(threads: usize) -> SimConfig {
    let mut cfg = SimConfig::paper_baseline();
    cfg.warmup_cycles = 200;
    cfg.measure_cycles = 1_500;
    cfg.drain_cycles = 8_000;
    cfg.threads = threads;
    cfg
}

fn shortcuts(dims: GridDims) -> Vec<Shortcut> {
    let n = dims.nodes();
    vec![Shortcut::new(0, n - 1), Shortcut::new(n - 1, 0)]
}

/// Runs the standard 6×6 mesh workload with the given config.
fn run_mesh(cfg: SimConfig) -> RunStats {
    let dims = GridDims::new(6, 6);
    let horizon = cfg.warmup_cycles + cfg.measure_cycles;
    let mut w = SyntheticWorkload::new(0x1ed6e4, dims.nodes(), 24, horizon);
    Network::new(NetworkSpec::mesh_baseline(dims, cfg)).run(&mut w)
}

/// Runs an RF-shortcut fault-storm configuration with the given config.
fn run_fault_storm(cfg: SimConfig) -> RunStats {
    let dims = GridDims::new(6, 6);
    let n = dims.nodes();
    let horizon = cfg.warmup_cycles + cfg.measure_cycles;
    let plan = FaultPlan::new(vec![
        (300, FaultEvent::ShortcutDown { src: 0 }),
        (500, FaultEvent::MeshLinkDown { a: 14, b: 15 }),
        (700, FaultEvent::LinkGlitch { a: 8, b: 14 }),
        (900, FaultEvent::ShortcutUp { src: 0, dst: n - 1 }),
        (1_100, FaultEvent::MeshLinkUp { a: 14, b: 15 }),
    ]);
    let spec =
        NetworkSpec::with_shortcuts(dims, cfg, shortcuts(dims)).with_fault_plan(plan);
    let mut w = SyntheticWorkload::new(0x1ed6e5, n, 24, horizon);
    Network::new(spec).run(&mut w)
}

/// Strips the observer reports so two [`RunStats`] can be compared for
/// simulation equality regardless of instrumentation.
fn strip_observers(mut s: RunStats) -> RunStats {
    s.ledger = None;
    s.telemetry = None;
    s
}

/// The inertness contract: every simulated statistic is bit-identical
/// with the ledger on or off — serial, sharded, and through a fault
/// storm on the sharded engine.
#[test]
fn ledger_never_perturbs_the_simulation() {
    for threads in [1usize, 4] {
        let off = run_mesh(base_config(threads));
        let mut on_cfg = base_config(threads);
        on_cfg.ledger = Some(LedgerConfig::every(400));
        let on = run_mesh(on_cfg);
        assert!(on.ledger.is_some(), "ledger report missing at {threads} threads");
        assert_eq!(
            strip_observers(on),
            strip_observers(off),
            "ledger perturbed the mesh run at {threads} threads"
        );

        let off = run_fault_storm(base_config(threads));
        let mut on_cfg = base_config(threads);
        on_cfg.ledger = Some(LedgerConfig::every(400));
        let on = run_fault_storm(on_cfg);
        assert_eq!(
            strip_observers(on),
            strip_observers(off),
            "ledger perturbed the fault storm at {threads} threads"
        );
    }
}

/// Heartbeats tile the run exactly: the first span starts at 0, spans
/// abut, full spans cover the configured interval, and the last ends at
/// the run's end cycle.
#[test]
fn heartbeats_tile_the_run() {
    let mut cfg = base_config(1);
    cfg.ledger = Some(LedgerConfig::every(400));
    let stats = run_mesh(cfg);
    let report = stats.ledger.as_ref().expect("ledger enabled");
    assert_eq!(report.interval, 400);
    assert_eq!(report.shards, 1);

    let hbs: Vec<(u64, u64)> = report
        .heartbeats()
        .map(|r| match r {
            LedgerRecord::Heartbeat { cycle, cycles, .. } => (*cycle, *cycles),
            other => panic!("heartbeats() yielded {other:?}"),
        })
        .collect();
    assert!(hbs.len() >= 3, "run spans several intervals: {hbs:?}");
    let mut expected_start = 0;
    for (i, &(cycle, cycles)) in hbs.iter().enumerate() {
        assert_eq!(cycle - cycles, expected_start, "heartbeat {i} abuts the previous");
        assert!(cycle > expected_start, "heartbeat {i} advances");
        if i + 1 < hbs.len() {
            assert_eq!(cycles, 400, "heartbeat {i} covers a full interval");
        } else {
            assert!(cycles <= 400, "final heartbeat is at most one interval");
        }
        expected_start = cycle;
    }
    assert_eq!(expected_start, stats.end_cycle, "heartbeats tile the whole run");
    // Serial engine: no shard records.
    assert!(
        !report.records.iter().any(|r| matches!(r, LedgerRecord::Shard { .. })),
        "serial run must not emit shard records"
    );
    assert!(report.active_visits > 0, "active visits counted on the serial path too");
}

/// Sharded runs emit one shard record per shard per heartbeat, stamped
/// with the owning heartbeat's cycle, and the per-shard swept-router
/// counts reconcile exactly with the engine's total active-router visits.
#[test]
fn shard_records_reconcile_with_active_visits() {
    let threads = 4;
    let mut cfg = base_config(threads);
    cfg.ledger = Some(LedgerConfig::every(400));
    let stats = run_mesh(cfg);
    let report = stats.ledger.as_ref().expect("ledger enabled");
    assert_eq!(report.shards, threads as u32);

    let mut hb_cycles = Vec::new();
    let mut shard_cycles: Vec<(u64, u32)> = Vec::new();
    for r in &report.records {
        match r {
            LedgerRecord::Heartbeat { cycle, .. } => hb_cycles.push(*cycle),
            LedgerRecord::Shard { cycle, shard, .. } => shard_cycles.push((*cycle, *shard)),
            LedgerRecord::Event { .. } => {}
        }
    }
    assert_eq!(
        shard_cycles.len(),
        hb_cycles.len() * threads,
        "one shard record per shard per heartbeat"
    );
    for &hb in &hb_cycles {
        for shard in 0..threads as u32 {
            assert!(
                shard_cycles.contains(&(hb, shard)),
                "missing shard {shard} record for heartbeat at cycle {hb}"
            );
        }
    }
    assert_eq!(
        report.shard_swept_total(),
        report.active_visits,
        "per-shard swept counts must reconcile with total active visits"
    );
    assert!(report.active_visits > 0);
    // Sweep timing is live on the instrumented sharded engine.
    let timed: f64 = report
        .records
        .iter()
        .filter_map(|r| match r {
            LedgerRecord::Shard { sweep_ms, .. } => Some(*sweep_ms),
            _ => None,
        })
        .sum();
    assert!(timed > 0.0, "sharded sweeps must report wall time");
}

/// Timeline events (faults, retunes) are mirrored onto the ledger stream
/// with their cycle stamps, and every record renders as a JSONL object
/// carrying its kind tag.
#[test]
fn events_mirror_and_records_render() {
    let mut cfg = base_config(2);
    cfg.ledger = Some(LedgerConfig::every(500));
    let stats = run_fault_storm(cfg);
    let report = stats.ledger.as_ref().expect("ledger enabled");

    let fault_cycles: Vec<u64> = report
        .records
        .iter()
        .filter_map(|r| match r {
            LedgerRecord::Event { cycle, kind: TimelineEventKind::Fault(_) } => Some(*cycle),
            _ => None,
        })
        .collect();
    assert!(
        fault_cycles.len() >= 3,
        "fault-plan events must be mirrored: {fault_cycles:?}"
    );
    for &c in &fault_cycles {
        assert!(c <= stats.end_cycle);
    }

    for r in &report.records {
        let line = r.render_jsonl();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(
            line.starts_with(&format!("{{\"kind\": \"{}\"", r.kind())),
            "{line}"
        );
        assert!(line.contains(&format!("\"cycle\": {}", r.cycle())), "{line}");
        assert!(!line.contains('\n'), "one record per line: {line}");
    }
}

/// `run` moves the accumulated stream out into the returned stats: a
/// second `run` on the same network (which, with the cycle clock already
/// past the horizon, simulates nothing — phased experiments build a
/// fresh network per phase) yields a fresh, empty report rather than a
/// duplicate of the first stream.
#[test]
fn ledger_stream_is_moved_out_per_run() {
    let dims = GridDims::new(4, 4);
    let mut cfg = SimConfig::paper_baseline();
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 300;
    cfg.drain_cycles = 2_000;
    cfg.ledger = Some(LedgerConfig::every(100));
    let mut network = Network::new(NetworkSpec::mesh_baseline(dims, cfg));
    let mut w1 = SyntheticWorkload::new(0xaaaa, dims.nodes(), 8, 300);
    let first = network.run(&mut w1);
    let first_report = first.ledger.as_ref().expect("first run ledger");
    assert!(first_report.active_visits > 0);
    assert!(first_report.heartbeats().count() >= 3);
    let mut w2 = SyntheticWorkload::new(0xbbbb, dims.nodes(), 8, 300);
    let second = network.run(&mut w2);
    let second_report = second.ledger.as_ref().expect("second run ledger");
    assert!(
        second_report.records.is_empty() && second_report.active_visits == 0,
        "second run must not replay the first stream: {second_report:?}"
    );
}
