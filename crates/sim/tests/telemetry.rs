//! Integration tests of the telemetry subsystem: interval bucketing,
//! inertness of the hooks when enabled, span timing pinned against the
//! router pipeline, per-endpoint completion counters, and the
//! fault/retune event timeline.

use proptest::prelude::*;
use rfnoc_sim::{
    latency_bucket, latency_bucket_bounds, ChannelMask, ConfigError, DestSet, FaultEvent,
    FaultPlan, FlitEventKind, FlitTraceConfig, MessageClass, MessageSpec, Network,
    NetworkSpec, RunStats, ScriptedWorkload, SimConfig, SimError, TelemetryConfig,
    TimelineEventKind, LATENCY_BUCKETS,
};
use rfnoc_topology::{GridDims, Shortcut};

fn quick_config() -> SimConfig {
    let mut cfg = SimConfig::paper_baseline();
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 1_000;
    cfg.drain_cycles = 20_000;
    cfg
}

fn run_scripted(spec: NetworkSpec, events: Vec<(u64, MessageSpec)>) -> RunStats {
    let mut network = Network::new(spec);
    let mut workload = ScriptedWorkload::new(events);
    network.run(&mut workload)
}

/// A deterministic all-to-few stream that keeps several routers busy.
fn stream(n: usize, count: u64) -> Vec<(u64, MessageSpec)> {
    (0..count)
        .map(|i| {
            let src = (i as usize * 7) % n;
            let dst = (i as usize * 11 + 1) % n;
            let dst = if dst == src { (dst + 1) % n } else { dst };
            (i * 3, MessageSpec::unicast(src, dst, MessageClass::Data))
        })
        .collect()
}

#[test]
fn zero_interval_rejected_at_build() {
    let mut cfg = quick_config();
    cfg.telemetry = Some(TelemetryConfig::every(0));
    let spec = NetworkSpec::mesh_baseline(GridDims::new(4, 4), cfg);
    match Network::try_new(spec) {
        Err(SimError::Config(ConfigError::ZeroTelemetryInterval)) => {}
        other => panic!("expected zero-interval rejection, got {other:?}"),
    }
}

/// Samples tile the run exactly: contiguous starts, every sample but the
/// last covers the configured interval, and the covered cycles sum to the
/// run's end cycle even when the interval does not divide it.
#[test]
fn interval_bucketing_covers_the_run_exactly() {
    let dims = GridDims::new(4, 4);
    let mut cfg = quick_config();
    // 300 will not divide the end cycle (measure 1 000 plus drain).
    cfg.telemetry = Some(TelemetryConfig::every(300));
    let stats = run_scripted(NetworkSpec::mesh_baseline(dims, cfg), stream(16, 200));
    let report = stats.telemetry.as_ref().expect("telemetry enabled");

    assert_eq!(report.interval, 300);
    assert_eq!(report.routers, 16);
    assert!(report.samples.len() >= 2, "run spans several intervals");
    let mut expected_start = 0;
    for (i, s) in report.samples.iter().enumerate() {
        assert_eq!(s.start, expected_start, "sample {i} start");
        if i + 1 < report.samples.len() {
            assert_eq!(s.cycles, 300, "sample {i} covers a full interval");
        } else {
            assert!(s.cycles > 0 && s.cycles <= 300, "final sample is partial");
        }
        expected_start += s.cycles;
    }
    assert_eq!(expected_start, stats.end_cycle, "samples tile the whole run");
    assert_eq!(report.sample_index_at(0), Some(0));
    assert_eq!(report.sample_index_at(299), Some(0));
    assert_eq!(report.sample_index_at(300), Some(1));
    assert_eq!(report.sample_index_at(stats.end_cycle + 1000), None);
}

/// With warmup 0 every cycle is counted, so the telemetry time series must
/// reconcile exactly with the scalar `RunStats` counters.
#[test]
fn samples_reconcile_with_run_totals() {
    let dims = GridDims::new(4, 4);
    let mut cfg = quick_config();
    cfg.telemetry = Some(TelemetryConfig::every(128));
    let stats = run_scripted(NetworkSpec::mesh_baseline(dims, cfg), stream(16, 300));
    let report = stats.telemetry.as_ref().expect("telemetry enabled");

    assert_eq!(report.total_port_grants(), stats.port_flits);
    let injected: u64 = report.samples.iter().map(|s| s.injected).sum();
    let ejected: u64 = report.samples.iter().map(|s| s.ejected_flits).sum();
    let completed: u64 = report.samples.iter().map(|s| s.completed_packets).sum();
    let hist: u64 =
        report.samples.iter().map(|s| s.latency_hist.iter().sum::<u64>()).sum();
    assert_eq!(injected, stats.injected_messages);
    assert_eq!(ejected, stats.ejected_flits);
    assert_eq!(completed, stats.completed_messages);
    assert_eq!(hist, stats.completed_messages, "every completion is bucketed");
    assert_eq!(report.samples.last().unwrap().in_flight_end, 0, "run drained");
    let peak: u32 =
        report.samples.iter().flat_map(|s| s.buffered_peak.iter().copied()).max().unwrap();
    assert!(peak > 0, "traffic must buffer at least one flit somewhere");
    // Every completed packet has a complete span whose latency matches the
    // histogram population.
    assert_eq!(report.spans.len(), stats.injected_messages as usize);
    assert_eq!(report.dropped_spans, 0);
    assert!(report.spans.iter().all(|s| s.is_complete() && s.measured));
}

/// Turning telemetry on (all channels) must not perturb the simulation:
/// the rest of `RunStats` is bit-identical to a telemetry-off run.
#[test]
fn telemetry_is_a_pure_observer() {
    let dims = GridDims::new(6, 6);
    let shortcuts = vec![Shortcut::new(0, 35), Shortcut::new(35, 0)];
    let events = stream(36, 500);

    let off = run_scripted(
        NetworkSpec::with_shortcuts(dims, quick_config(), shortcuts.clone()),
        events.clone(),
    );
    assert!(off.telemetry.is_none(), "telemetry defaults off");

    let mut cfg = quick_config();
    cfg.telemetry = Some(TelemetryConfig::every(100));
    let mut on =
        run_scripted(NetworkSpec::with_shortcuts(dims, cfg, shortcuts), events);
    assert!(on.telemetry.is_some());
    on.telemetry = None;
    assert_eq!(on, off, "telemetry must not change simulated behaviour");
}

/// The packet span agrees cycle-for-cycle with the flit trace and the
/// 5-cycle head pipeline on a 3-hop unicast.
#[test]
fn span_timing_pins_the_pipeline() {
    let dims = GridDims::new(4, 4);
    let mut cfg = quick_config();
    cfg.flit_trace = FlitTraceConfig::capped(256);
    cfg.telemetry = Some(TelemetryConfig::every(64));
    let mut network = Network::new(NetworkSpec::mesh_baseline(dims, cfg));
    let mut workload = ScriptedWorkload::new(vec![(
        0,
        MessageSpec::unicast(0, 3, MessageClass::Request),
    )]);
    let stats = network.run(&mut workload);
    let report = stats.telemetry.as_ref().expect("telemetry enabled");
    assert_eq!(report.spans.len(), 1);
    let span = &report.spans[0];

    let trace = network.flit_trace();
    let first_grant = trace
        .iter()
        .find(|e| matches!(e.kind, FlitEventKind::Granted { .. }))
        .expect("head flit granted");
    let ejected = trace
        .iter()
        .find(|e| e.kind == FlitEventKind::Ejected)
        .expect("head flit ejected");

    assert_eq!(span.src, 0);
    assert_eq!(span.dest, 3);
    assert_eq!(span.injected_at, 0);
    assert_eq!(span.first_grant_at, first_grant.cycle);
    // The local-port grant is followed by switch + link traversal before
    // the flit lands at the destination core.
    assert_eq!(span.ejected_at, ejected.cycle + 2);
    assert_eq!(span.hops, 3, "0→1→2→3 traverses three links");
    assert!(!span.took_rf, "no shortcuts on a bare mesh");
    assert_eq!(span.latency(), Some(span.ejected_at));
    // Head grants at routers 0,1,2 are spaced by the 5-cycle pipeline, so
    // the whole span is pinned once its endpoints are.
    assert_eq!(ejected.cycle - first_grant.cycle, 3 * 5);
}

/// A packet routed over an RF shortcut is flagged in its span.
#[test]
fn span_records_rf_traversal() {
    let dims = GridDims::new(8, 8);
    let mut cfg = quick_config();
    cfg.telemetry = Some(TelemetryConfig::every(100));
    let spec =
        NetworkSpec::with_shortcuts(dims, cfg, vec![Shortcut::new(0, 63)]);
    let stats =
        run_scripted(spec, vec![(0, MessageSpec::unicast(0, 63, MessageClass::Data))]);
    let report = stats.telemetry.as_ref().expect("telemetry enabled");
    assert_eq!(report.spans.len(), 1);
    assert!(report.spans[0].took_rf, "corner-to-corner traffic takes the shortcut");
    assert_eq!(report.spans[0].hops, 1, "one shortcut hop");
    let rf: u64 = report.samples.iter().map(|s| s.rf_grants).sum();
    assert!(rf > 0, "RF grants show up in the link channel");
}

/// Spans past the cap are dropped and counted, never silently lost.
#[test]
fn span_cap_counts_dropped_spans() {
    let dims = GridDims::new(4, 4);
    let mut cfg = quick_config();
    cfg.telemetry = Some(TelemetryConfig {
        interval: 100,
        channels: ChannelMask::ALL,
        span_limit: 2,
        ..TelemetryConfig::every(100)
    });
    let stats = run_scripted(NetworkSpec::mesh_baseline(dims, cfg), stream(16, 5));
    let report = stats.telemetry.as_ref().expect("telemetry enabled");
    assert_eq!(report.spans.len(), 2, "cap respected");
    assert_eq!(report.dropped_spans, 3, "overflow counted");
}

/// Flit-trace truncation is observable through the dropped counter.
#[test]
fn flit_trace_truncation_is_counted() {
    let dims = GridDims::new(4, 4);
    let mut cfg = quick_config();
    cfg.flit_trace = FlitTraceConfig::capped(7);
    let mut network = Network::new(NetworkSpec::mesh_baseline(dims, cfg));
    let mut w =
        ScriptedWorkload::new(vec![(0, MessageSpec::unicast(0, 15, MessageClass::Memory))]);
    network.run(&mut w);
    assert_eq!(network.flit_trace().len(), 7);
    assert!(network.flit_trace_dropped() > 0, "truncation must be visible");
}

/// Disabled channels leave their fields empty; the sample vectors do not
/// allocate for data nobody asked for.
#[test]
fn channel_mask_gates_recording() {
    let dims = GridDims::new(4, 4);
    let mut cfg = quick_config();
    cfg.telemetry = Some(TelemetryConfig {
        interval: 100,
        channels: ChannelMask::LINKS,
        ..TelemetryConfig::every(100)
    });
    let stats = run_scripted(NetworkSpec::mesh_baseline(dims, cfg), stream(16, 100));
    let report = stats.telemetry.as_ref().expect("telemetry enabled");
    assert!(report.samples.iter().all(|s| !s.port_grants.is_empty()));
    assert!(report.samples.iter().all(|s| s.buffered_cycles.is_empty()));
    assert!(report.samples.iter().all(|s| s.buffered_peak.is_empty()));
    assert!(report.samples.iter().all(|s| s.latency_hist.iter().all(|&b| b == 0)));
    assert!(report.samples.iter().all(|s| s.injected == 0 && s.completed_packets == 0));
    assert!(
        report.samples.iter().all(|s| {
            s.va_stalls == 0 && s.sa_stalls == 0 && s.credit_stalls == 0
        }),
        "stall channel off"
    );
    assert!(report.spans.is_empty(), "span channel off");
    assert_eq!(report.dropped_spans, 0, "disabled spans are not 'dropped'");
}

/// Per-endpoint completion counters attribute traffic to sources and
/// destinations, including multicast deliveries and self-destinations.
#[test]
fn per_source_and_per_dest_count_completions() {
    let dims = GridDims::new(4, 4);
    let events = vec![
        (0, MessageSpec::unicast(0, 3, MessageClass::Data)),
        (5, MessageSpec::unicast(0, 3, MessageClass::Request)),
        (10, MessageSpec::unicast(1, 3, MessageClass::Data)),
        (15, MessageSpec::unicast(2, 5, MessageClass::Data)),
    ];
    let stats = run_scripted(NetworkSpec::mesh_baseline(dims, quick_config()), events);
    assert_eq!(stats.completed_messages, 4);
    assert_eq!(stats.per_source[0], 2);
    assert_eq!(stats.per_source[1], 1);
    assert_eq!(stats.per_source[2], 1);
    assert_eq!(stats.per_source.iter().map(|&c| u64::from(c)).sum::<u64>(), 4);
    assert_eq!(stats.per_dest[3], 3);
    assert_eq!(stats.per_dest[5], 1);
    assert_eq!(stats.per_dest.iter().map(|&c| u64::from(c)).sum::<u64>(), 4);

    // A multicast counts once at its source and once per destination
    // reached, the sender's own core included (AsUnicasts is the default
    // multicast mode).
    let events = vec![(
        0,
        MessageSpec::multicast(4, DestSet::from_nodes([0, 4, 9])),
    )];
    let stats = run_scripted(NetworkSpec::mesh_baseline(dims, quick_config()), events);
    assert_eq!(stats.completed_messages, 1);
    assert_eq!(stats.per_source[4], 1);
    assert_eq!(stats.per_dest[0], 1);
    assert_eq!(stats.per_dest[4], 1);
    assert_eq!(stats.per_dest[9], 1);
}

/// A scheduled fault and its recovery land on the telemetry timeline in
/// the interval where they occurred, so a utilization dip in the heatmap
/// can be attributed to the event that caused it.
#[test]
fn fault_and_retune_events_land_on_the_timeline() {
    let dims = GridDims::new(6, 6);
    let shortcuts = vec![Shortcut::new(0, 35), Shortcut::new(30, 5)];
    let mut cfg = quick_config();
    cfg.telemetry = Some(TelemetryConfig::every(100));
    let plan = FaultPlan::new(vec![(250, FaultEvent::ShortcutDown { src: 0 })]);
    let spec = NetworkSpec::with_shortcuts(dims, cfg, shortcuts).with_fault_plan(plan);
    let stats = run_scripted(spec, stream(36, 300));
    let report = stats.telemetry.as_ref().expect("telemetry enabled");

    let fault = report
        .events
        .iter()
        .find(|e| matches!(e.kind, TimelineEventKind::Fault(FaultEvent::ShortcutDown { src: 0 })))
        .expect("fault on the timeline");
    assert_eq!(fault.cycle, 250);
    assert_eq!(report.sample_index_at(fault.cycle), Some(2));
    assert!(
        report.events_in_sample(2).any(|e| e.cycle == 250),
        "event attributed to its interval"
    );
    // The degradation machinery follows: a retune installing the surviving
    // shortcut, then the table rewrite completing.
    let retune = report
        .events
        .iter()
        .find(|e| matches!(e.kind, TimelineEventKind::RetuneApplied { installed: 1 }))
        .expect("retune follows the fault");
    assert!(retune.cycle >= fault.cycle);
    let rewrite = report
        .events
        .iter()
        .find(|e| e.kind == TimelineEventKind::TablesRewritten)
        .expect("table rewrite completes");
    assert!(rewrite.cycle >= retune.cycle);
    assert_eq!(stats.shortcut_faults, 1);
}

/// The log2 bucket edges at and around every boundary map to the
/// documented bucket: bucket 0 is `< 16`, bucket i is `[16·2^(i-1),
/// 16·2^i)`, and the last bucket is unbounded.
#[test]
fn latency_bucket_edges_match_documented_bounds() {
    assert_eq!(latency_bucket(0), 0);
    assert_eq!(latency_bucket(1), 0);
    assert_eq!(latency_bucket(15), 0);
    assert_eq!(latency_bucket(16), 1);
    for i in 1..LATENCY_BUCKETS {
        let (lo, hi) = latency_bucket_bounds(i);
        assert_eq!(lo, 16u64 << (i - 1));
        assert_eq!(latency_bucket(lo), i);
        assert_eq!(latency_bucket(lo - 1), i - 1);
        if i + 1 == LATENCY_BUCKETS {
            assert_eq!(hi, u64::MAX);
            assert_eq!(latency_bucket(u64::MAX), i, "last bucket is unbounded");
        } else {
            assert_eq!(latency_bucket(hi - 1), i);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The 8 log2 buckets partition the latency axis: every latency lands
    /// in exactly one bucket, and that bucket's bounds contain it. Each
    /// case checks an arbitrary latency, a small one, and one hugging a
    /// power-of-two edge where an off-by-one would hide.
    #[test]
    fn latency_buckets_partition_all_latencies(
        raw in any::<u64>(),
        small in 0u64..2048,
        shift in 0u32..40,
        nudge in 0u64..3,
    ) {
        let edge = (1u64 << shift).saturating_sub(1).saturating_add(nudge);
        for latency in [raw, small, edge] {
            let holders: Vec<usize> = (0..LATENCY_BUCKETS)
                .filter(|&i| {
                    let (lo, hi) = latency_bucket_bounds(i);
                    lo <= latency && (latency < hi || hi == u64::MAX)
                })
                .collect();
            prop_assert_eq!(holders.len(), 1, "exactly one bucket holds {}", latency);
            prop_assert_eq!(holders[0], latency_bucket(latency));
        }
    }
}

/// The run-total histogram reconciles three ways: against the per-sample
/// histograms it sums, against a histogram rebuilt from the recorded
/// spans, and against the completed-message count.
#[test]
fn total_latency_histogram_reconciles_with_spans_and_completions() {
    let dims = GridDims::new(6, 6);
    let mut cfg = quick_config();
    cfg.telemetry = Some(TelemetryConfig::every(100));
    let stats = run_scripted(NetworkSpec::mesh_baseline(dims, cfg), stream(36, 400));
    let report = stats.telemetry.as_ref().expect("telemetry enabled");
    assert_eq!(report.dropped_spans, 0, "all spans retained for this run");

    let total = report.total_latency_histogram();
    assert_eq!(total.iter().sum::<u64>(), stats.completed_messages);

    let mut from_samples = [0u64; LATENCY_BUCKETS];
    for s in &report.samples {
        for (t, &v) in from_samples.iter_mut().zip(&s.latency_hist) {
            *t += v;
        }
    }
    assert_eq!(total, from_samples);

    let mut from_spans = [0u64; LATENCY_BUCKETS];
    for span in report.spans.iter().filter(|s| s.measured) {
        from_spans[latency_bucket(span.latency().expect("run drained"))] += 1;
    }
    assert_eq!(total, from_spans, "histogram and spans bucket identically");
    assert!(total.iter().filter(|&&b| b > 0).count() >= 2, "traffic spreads over buckets");
}
