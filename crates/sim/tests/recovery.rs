//! Recovery-time instrumentation tests: per-fault `RecoveryRecord`s
//! measure drain, table-rewrite, and latency re-convergence durations,
//! and turning the tracker on never changes simulated behavior.

use rfnoc_power::LinkWidth;
use rfnoc_sim::{
    FaultEvent, FaultPlan, MessageClass, MessageSpec, Network, NetworkSpec, RecoveryConfig,
    RunStats, ScriptedWorkload, SimConfig,
};
use rfnoc_topology::{GridDims, Shortcut};

fn base_config() -> SimConfig {
    let mut cfg = SimConfig::paper_baseline().with_link_width(LinkWidth::B16);
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 20_000;
    cfg.drain_cycles = 40_000;
    cfg
}

/// A steady stream of short-haul probes that a lost 0→99 shortcut does
/// not reroute, so the windowed latency returns to its pre-fault mean.
fn steady_probes(count: u64, spacing: u64) -> Vec<(u64, MessageSpec)> {
    let pairs = [(1usize, 2usize), (12, 13), (55, 56), (90, 9), (70, 71)];
    (0..count)
        .map(|i| {
            let (s, d) = pairs[(i % pairs.len() as u64) as usize];
            (i * spacing, MessageSpec::unicast(s, d, MessageClass::Data))
        })
        .collect()
}

#[test]
fn rf_fault_records_drain_rewrite_and_convergence() {
    let dims = GridDims::new(10, 10);
    let shortcuts = vec![Shortcut::new(0, 99), Shortcut::new(90, 9)];
    let plan = FaultPlan::new(vec![(3_000, FaultEvent::ShortcutDown { src: 0 })]);
    let cfg = base_config().with_recovery(RecoveryConfig { window: 32, epsilon: 0.10 });
    let spec =
        NetworkSpec::with_shortcuts(dims, cfg.clone(), shortcuts).with_fault_plan(plan);
    let mut network = Network::new(spec);
    let stats = network.run(&mut ScriptedWorkload::new(steady_probes(800, 20)));

    assert!(stats.is_healthy());
    assert_eq!(stats.recovery.len(), 1, "one fault, one record: {:?}", stats.recovery);
    let rec = &stats.recovery[0];
    assert!(matches!(rec.event, FaultEvent::ShortcutDown { src: 0 }));
    assert_eq!(rec.fault_cycle, 3_000);
    // RF faults pass through the drain → retune → rewrite machinery.
    // An idle RF port drains instantly, so 0 is legal — what matters is
    // that the phase was measured and stayed bounded.
    let drain = rec.drain_cycles.expect("RF fault must record a drain phase");
    assert!(drain < 1_000, "drain took {drain}");
    assert_eq!(
        rec.rewrite_cycles,
        Some(cfg.reconfig_cycles),
        "table rewrite is the configured reconfiguration latency"
    );
    // The probe stream is untouched by the lost shortcut, so the windowed
    // mean re-converges and stamps a bounded recovery time.
    let conv = rec.convergence_cycles.expect("steady probes must re-converge");
    assert!(rec.converged());
    assert!(conv >= drain, "convergence ({conv}) includes the drain ({drain})");
    assert!(conv < 20_000, "convergence must land within the run ({conv})");
}

#[test]
fn mesh_fault_records_skip_the_drain_phase() {
    let dims = GridDims::new(6, 6);
    // Fail and later repair one edge link; traffic detours meanwhile.
    let plan = FaultPlan::new(vec![
        (2_000, FaultEvent::MeshLinkDown { a: 0, b: 1 }),
        (6_000, FaultEvent::MeshLinkUp { a: 0, b: 1 }),
    ]);
    let cfg = base_config().with_recovery(RecoveryConfig::slo());
    let spec = NetworkSpec::mesh_baseline(dims, cfg).with_fault_plan(plan);
    let mut network = Network::new(spec);
    let workload: Vec<(u64, MessageSpec)> = (0..600)
        .map(|i| {
            let (s, d) = [(2usize, 3usize), (7, 8), (20, 21)][(i % 3) as usize];
            (i * 25, MessageSpec::unicast(s, d, MessageClass::Data))
        })
        .collect();
    let stats = network.run(&mut ScriptedWorkload::new(workload));

    assert!(stats.is_healthy());
    // Both the failure and the repair are tracked as faults-to-recover-from.
    assert_eq!(stats.recovery.len(), 2, "{:?}", stats.recovery);
    for rec in &stats.recovery {
        assert_eq!(rec.drain_cycles, None, "mesh events trigger no RF drain");
        assert_eq!(rec.rewrite_cycles, None);
        assert!(rec.converged(), "off-path traffic re-converges: {rec:?}");
    }
}

#[test]
fn unconverged_recovery_is_reported_open() {
    let dims = GridDims::new(10, 10);
    let shortcut = Shortcut::new(0, 99);
    // Traffic that rides the shortcut: after the fault every message pays
    // the full 18-hop mesh path, so the windowed mean never returns to
    // within 10% of the 1-hop baseline.
    let workload: Vec<(u64, MessageSpec)> =
        (0..700).map(|i| (i * 25, MessageSpec::unicast(0, 99, MessageClass::Data))).collect();
    let plan = FaultPlan::new(vec![(8_000, FaultEvent::ShortcutDown { src: 0 })]);
    let cfg = base_config().with_recovery(RecoveryConfig::slo());
    let spec =
        NetworkSpec::with_shortcuts(dims, cfg, vec![shortcut]).with_fault_plan(plan);
    let mut network = Network::new(spec);
    let stats = network.run(&mut ScriptedWorkload::new(workload));

    assert!(stats.is_healthy());
    assert_eq!(stats.recovery.len(), 1);
    let rec = &stats.recovery[0];
    assert!(rec.drain_cycles.is_some());
    assert_eq!(
        rec.convergence_cycles, None,
        "latency on the dead shortcut's pairs must not count as recovered"
    );
    assert!(!rec.converged());
}

/// The aggregate fields the golden hashes pin: everything except the
/// recovery records themselves.
fn behavior_signature(stats: &RunStats) -> (u64, u64, u64, Vec<u32>, u64, u64, u64) {
    (
        stats.injected_messages,
        stats.completed_messages,
        stats.end_cycle,
        stats.message_latencies.clone(),
        stats.hops_sum,
        stats.shortcut_faults,
        stats.retransmitted_flits,
    )
}

#[test]
fn recovery_tracking_is_bit_identical_to_off() {
    let dims = GridDims::new(10, 10);
    let shortcuts = vec![Shortcut::new(0, 99), Shortcut::new(90, 9)];
    let plan = FaultPlan::new(vec![
        (1_500, FaultEvent::ShortcutDown { src: 0 }),
        (4_000, FaultEvent::LinkGlitch { a: 1, b: 2 }),
        (5_000, FaultEvent::BandDown),
    ]);
    let workload = steady_probes(500, 20);

    let run = |cfg: SimConfig| {
        let spec = NetworkSpec::with_shortcuts(dims, cfg, shortcuts.clone())
            .with_fault_plan(plan.clone());
        Network::new(spec).run(&mut ScriptedWorkload::new(workload.clone()))
    };
    let off = run(base_config());
    let on = run(base_config().with_recovery(RecoveryConfig::slo()));

    assert!(off.recovery.is_empty(), "tracker off records nothing");
    assert!(!on.recovery.is_empty(), "tracker on records the faults");
    assert_eq!(
        behavior_signature(&off),
        behavior_signature(&on),
        "recovery tracking is observational: every behavioral stat matches"
    );
}
