//! End-to-end scaling: the degree-generic engine runs fabrics far beyond
//! the paper's 10x10 under an RF overlay. Windows are tier-1-sized (these
//! run in debug CI); throughput and build-time envelopes are measured by
//! the release-mode `mesh_scaling` bench instead.

use rfnoc_sim::{MessageClass, MessageSpec, Network, NetworkSpec, SimConfig, Workload};
use rfnoc_topology::{FabricSpec, GridDims, Shortcut};

/// Deterministic xorshift unicast traffic at `load_256`/256 messages per
/// node per cycle, mirroring the golden determinism suite.
struct SyntheticWorkload {
    state: u64,
    nodes: usize,
    load_256: u64,
    until: u64,
}

impl Workload for SyntheticWorkload {
    fn messages_at(&mut self, cycle: u64, out: &mut Vec<MessageSpec>) {
        if cycle >= self.until {
            return;
        }
        for src in 0..self.nodes {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            if x % 256 >= self.load_256 {
                continue;
            }
            let mut dst = (self.state % self.nodes as u64) as usize;
            if dst == src {
                dst = (dst + 1) % self.nodes;
            }
            out.push(MessageSpec::unicast(src, dst, MessageClass::Request));
        }
    }
}

/// Corner-diagonal RF overlay legal on any rectangular fabric.
fn corner_shortcuts(fabric: FabricSpec) -> Vec<Shortcut> {
    let dims = fabric.dims();
    let n = dims.nodes();
    vec![
        Shortcut::new(0, n - 1),
        Shortcut::new(n - 1, 0),
        Shortcut::new(dims.width() - 1, n - dims.width()),
        Shortcut::new(n - dims.width(), dims.width() - 1),
    ]
}

fn short_config() -> SimConfig {
    let mut cfg = SimConfig::paper_baseline();
    cfg.warmup_cycles = 50;
    cfg.measure_cycles = 300;
    cfg.drain_cycles = 5_000;
    cfg
}

/// Runs `fabric` under the corner RF overlay end-to-end and sanity-checks
/// the traffic actually crossed the network.
fn run_overlay(fabric: FabricSpec, load_256: u64) {
    let cfg = short_config();
    let horizon = cfg.warmup_cycles + cfg.measure_cycles;
    let nodes = fabric.dims().nodes();
    let spec = NetworkSpec::with_fabric(fabric, cfg, corner_shortcuts(fabric));
    let mut w = SyntheticWorkload { state: 0x5eed_5ca1e, nodes, load_256, until: horizon };
    let stats = Network::new(spec).run(&mut w);
    assert!(stats.completed_messages > 100, "{}: only {} completions", fabric.name(), stats.completed_messages);
    assert!(!stats.saturated, "{}: saturated at low load", fabric.name());
    assert!(stats.avg_hops() >= 1.0, "{}: degenerate hop count", fabric.name());
    assert!(stats.activity.rf_bytes > 0, "{}: RF overlay never used", fabric.name());
}

#[test]
fn mesh_64x64_runs_under_rf_overlay() {
    // 4096 nodes at ~2 messages/cycle total: measures that construction,
    // routing tables, and the cycle engine all scale, not throughput.
    run_overlay(FabricSpec::mesh(GridDims::new(64, 64)), 1);
}

#[test]
fn ringmesh_32x32_runs_under_rf_overlay() {
    run_overlay(FabricSpec::ring_mesh(GridDims::new(32, 32), 4), 2);
}

/// A single corner-to-corner message on each large fabric arrives with
/// exactly the fabric's base-route hop count when no shortcut helps.
#[test]
fn zero_load_hop_counts_match_fabric_routes() {
    for fabric in [
        FabricSpec::mesh(GridDims::new(64, 64)),
        FabricSpec::ring_mesh(GridDims::new(32, 32), 4),
    ] {
        let n = fabric.dims().nodes();
        let (src, dst) = (1, n - 2);
        let mut cfg = short_config();
        cfg.warmup_cycles = 0;
        let spec = NetworkSpec::with_fabric(fabric, cfg, Vec::new());
        let mut w = rfnoc_sim::ScriptedWorkload::new(vec![(
            0,
            MessageSpec::unicast(src, dst, MessageClass::Request),
        )]);
        let stats = Network::new(spec).run(&mut w);
        assert_eq!(stats.completed_messages, 1, "{}", fabric.name());
        assert_eq!(
            stats.hops_sum,
            u64::from(fabric.base_route_len(src, dst)),
            "{}: hop count diverges from the fabric's base route",
            fabric.name()
        );
    }
}
