//! Golden-stats determinism suite: pins a hash of the full [`RunStats`]
//! for representative configurations, proving that engine optimizations
//! (active-router scheduling, zero-alloc steady state) are bit-identical
//! to the seed cycle engine. Any change to these hashes means the
//! optimized engine no longer simulates the same network.
//!
//! To re-bless after an *intentional* behavioural change (never for a
//! pure performance change), run:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p rfnoc-sim --test golden_stats -- --nocapture
//! ```
//!
//! and copy the printed table over `GOLDEN`.

use rfnoc_sim::{
    DestSet, FaultEvent, FaultPlan, LedgerConfig, McConfig, MessageClass, MessageSpec,
    MulticastMode, Network, NetworkSpec, RunStats, SimConfig, VctConfig, Workload,
};
use rfnoc_topology::{FabricSpec, GridDims, Shortcut};
use std::cell::Cell;

/// FNV-1a over a canonical little-endian serialization.
#[derive(Clone)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64s<'a>(&mut self, vs: impl IntoIterator<Item = &'a u64>) {
        for &v in vs {
            self.u64(v);
        }
    }
}

/// Hashes every observable field of the run statistics.
fn hash_stats(s: &RunStats) -> u64 {
    let mut h = Fnv::new();
    h.u64(s.injected_messages);
    h.u64(s.completed_messages);
    h.u64(s.message_latency_sum);
    h.u64(s.message_latencies.len() as u64);
    for &l in &s.message_latencies {
        h.u64(l as u64);
    }
    h.u64(s.ejected_flits);
    h.u64(s.hops_sum);
    h.u64(s.hop_packets);
    h.u64(s.flit_latency_sum);
    h.u64s(&s.distance_histogram);
    h.u64(s.activity.cycles);
    h.u64s(&s.activity.router_bytes);
    h.u64(s.activity.link_byte_hops);
    h.u64(s.activity.rf_bytes);
    h.u64s(&s.port_flits);
    h.u64(s.pair_counts.len() as u64);
    for &c in &s.pair_counts {
        h.u64(c as u64);
    }
    h.u64(s.saturated as u64);
    h.u64(s.end_cycle);
    h.u64(s.shortcut_faults);
    h.u64(s.mesh_link_faults);
    h.u64(s.repairs);
    h.u64(s.retransmitted_flits);
    match &s.health {
        None => h.u64(0),
        Some(r) => {
            h.u64(1 + r.diagnosis as u64);
            h.u64(r.cycle);
            h.u64(r.outstanding);
            h.u64(r.stalled_for);
            h.u64(r.since_completion);
        }
    }
    h.0
}

/// A deterministic synthetic workload: xorshift-driven unicasts (and
/// optionally multicasts) at a fixed messages-per-cycle probability,
/// independent of any external RNG crate.
struct SyntheticWorkload {
    state: u64,
    nodes: usize,
    /// Injection probability per node per cycle, in 1/256ths.
    load_256: u64,
    /// One in `mc_every` messages is a multicast from `mc_srcs` (0 = none).
    mc_every: u64,
    mc_srcs: Vec<usize>,
    emitted: u64,
    until: u64,
}

impl SyntheticWorkload {
    fn unicast(seed: u64, nodes: usize, load_256: u64, until: u64) -> Self {
        Self { state: seed, nodes, load_256, mc_every: 0, mc_srcs: Vec::new(), emitted: 0, until }
    }

    fn with_multicast(mut self, every: u64, srcs: Vec<usize>) -> Self {
        self.mc_every = every;
        self.mc_srcs = srcs;
        self
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

impl Workload for SyntheticWorkload {
    fn messages_at(&mut self, cycle: u64, out: &mut Vec<MessageSpec>) {
        if cycle >= self.until {
            return;
        }
        for src in 0..self.nodes {
            if self.next() % 256 >= self.load_256 {
                continue;
            }
            self.emitted += 1;
            if self.mc_every > 0 && self.emitted.is_multiple_of(self.mc_every) {
                let pick = (self.next() % self.mc_srcs.len() as u64) as usize;
                let tx = self.mc_srcs[pick];
                let mut dests = DestSet::empty();
                while dests.len() < 4 {
                    let d = (self.next() % self.nodes as u64) as usize;
                    if d != tx {
                        dests.insert(d);
                    }
                }
                out.push(MessageSpec::multicast(tx, dests));
                continue;
            }
            let mut dst = (self.next() % self.nodes as u64) as usize;
            if dst == src {
                dst = (dst + 1) % self.nodes;
            }
            let class = match self.next() % 3 {
                0 => MessageClass::Request,
                1 => MessageClass::Data,
                _ => MessageClass::Memory,
            };
            out.push(MessageSpec::unicast(src, dst, class));
        }
    }
}

thread_local! {
    /// When set, [`golden_config`] instruments the run with the ledger —
    /// the golden-with-ledger test flips this to re-run every pinned case
    /// observed, without touching the thirteen `run_case` arms. A
    /// thread-local (not an env var) keeps the parallel test harness
    /// race-free.
    static LEDGER_ON: Cell<bool> = const { Cell::new(false) };
}

fn golden_config(threads: usize) -> SimConfig {
    let mut cfg = SimConfig::paper_baseline();
    cfg.warmup_cycles = 200;
    cfg.measure_cycles = 1_500;
    cfg.drain_cycles = 8_000;
    cfg.threads = threads;
    if LEDGER_ON.with(Cell::get) {
        cfg.ledger = Some(LedgerConfig::every(400));
    }
    cfg
}

/// Staggered diagonal shortcut set obeying the one-in/one-out constraint.
fn shortcuts(dims: GridDims) -> Vec<Shortcut> {
    let n = dims.nodes();
    vec![
        Shortcut::new(0, n - 1),
        Shortcut::new(n - 1, 0),
        Shortcut::new(dims.width() - 1, n - dims.width()),
        Shortcut::new(n - dims.width(), dims.width() - 1),
    ]
}

fn rf_mc_spec(dims: GridDims, cfg: SimConfig) -> NetworkSpec {
    let receivers: Vec<usize> = (0..dims.nodes()).filter(|i| i % 3 == 0).collect();
    let serving = McConfig::serving_map(dims, &receivers);
    let mut cluster_of = vec![None; dims.nodes()];
    for (cluster, &tx) in [7usize, 10, 25, 28].iter().enumerate() {
        cluster_of[tx] = Some(cluster);
        cluster_of[tx + 1] = Some(cluster);
    }
    let mc = McConfig {
        transmitters: vec![7, 10, 25, 28],
        cluster_of,
        receivers,
        serving,
        epoch_cycles: 500,
        rf_flit_bytes: 16,
    };
    let mut spec = NetworkSpec::mesh_baseline(dims, cfg);
    spec.multicast = MulticastMode::Rf;
    spec.mc = Some(mc);
    spec
}

/// The pinned configurations: `(name, hash of RunStats)`. Produced from
/// the seed (pre-optimization) engine; the optimized engine must match
/// every one bit-for-bit.
const GOLDEN: &[(&str, u64)] = &[
    ("mesh_xy_low_load", 0xef383ad486c84f90),
    ("mesh_xy_saturating", 0x60280cdeac6fe8cf),
    ("rf_static", 0xb3ab4d1b2b448cdb),
    ("rf_adaptive_detour", 0x8a653a45f680e33c),
    ("wire_shortcuts", 0x32b19fc93b2fabd9),
    ("mc_as_unicasts", 0xab134fb463122f42),
    ("mc_vct_tree", 0x3aff70747d1d5ecc),
    ("mc_rf_broadcast", 0x4bee21face551716),
    ("faults_and_glitches", 0x55babe268b18ef6d),
    ("reconfigure_live", 0x42e818c4a140779d),
    // Ring-mesh fabric cases (8x8, tile 4): pinned when the degree-generic
    // router landed, guarding the heterogeneous-degree port layout.
    ("ringmesh_base_low_load", 0xf7ccf1ddaa383cdb),
    ("ringmesh_rf_adaptive", 0x66d62b210993d2c2),
    ("ringmesh_faults", 0x1d525d4c6f8ea398),
];

/// The ring-mesh fabric the `ringmesh_*` golden cases run on.
fn ring_fabric() -> FabricSpec {
    FabricSpec::ring_mesh(GridDims::new(8, 8), 4)
}

fn run_case(name: &str, threads: usize) -> RunStats {
    let dims = GridDims::new(6, 6);
    let n = dims.nodes();
    let horizon = |cfg: &SimConfig| cfg.warmup_cycles + cfg.measure_cycles;
    match name {
        "mesh_xy_low_load" => {
            let cfg = golden_config(threads);
            let mut w = SyntheticWorkload::unicast(0x5eed_0001, n, 4, horizon(&cfg));
            Network::new(NetworkSpec::mesh_baseline(dims, cfg)).run(&mut w)
        }
        "mesh_xy_saturating" => {
            let mut cfg = golden_config(threads);
            cfg.drain_cycles = 2_000;
            cfg.watchdog_cycles = 0;
            let mut w = SyntheticWorkload::unicast(0x5eed_0002, n, 96, horizon(&cfg));
            Network::new(NetworkSpec::mesh_baseline(dims, cfg)).run(&mut w)
        }
        "rf_static" => {
            let mut cfg = golden_config(threads);
            cfg.adaptive_shortcut_routing = false;
            let mut w = SyntheticWorkload::unicast(0x5eed_0003, n, 16, horizon(&cfg));
            Network::new(NetworkSpec::with_shortcuts(dims, cfg, shortcuts(dims))).run(&mut w)
        }
        "rf_adaptive_detour" => {
            let cfg = golden_config(threads);
            let mut w = SyntheticWorkload::unicast(0x5eed_0004, n, 48, horizon(&cfg));
            Network::new(NetworkSpec::with_shortcuts(dims, cfg, shortcuts(dims))).run(&mut w)
        }
        "wire_shortcuts" => {
            let cfg = golden_config(threads);
            let mut spec = NetworkSpec::with_shortcuts(dims, cfg, shortcuts(dims));
            spec.wire_shortcut_cycles_per_hop = Some(0.8);
            let mut w = SyntheticWorkload::unicast(0x5eed_0005, n, 16, horizon(&spec.config));
            Network::new(spec).run(&mut w)
        }
        "mc_as_unicasts" => {
            let mut cfg = golden_config(threads);
            cfg.collect_pair_counts = true;
            let mut w = SyntheticWorkload::unicast(0x5eed_0006, n, 12, horizon(&cfg))
                .with_multicast(5, vec![7, 10, 25, 28]);
            Network::new(NetworkSpec::mesh_baseline(dims, cfg)).run(&mut w)
        }
        "mc_vct_tree" => {
            let cfg = golden_config(threads);
            let mut spec = NetworkSpec::mesh_baseline(dims, cfg);
            spec.multicast = MulticastMode::Vct(VctConfig::default());
            let mut w = SyntheticWorkload::unicast(0x5eed_0007, n, 12, horizon(&spec.config))
                .with_multicast(4, vec![7, 10, 25, 28]);
            Network::new(spec).run(&mut w)
        }
        "mc_rf_broadcast" => {
            let cfg = golden_config(threads);
            let spec = rf_mc_spec(dims, cfg);
            let mut w = SyntheticWorkload::unicast(0x5eed_0008, n, 12, horizon(&spec.config))
                .with_multicast(4, vec![7, 10, 25, 28]);
            Network::new(spec).run(&mut w)
        }
        "faults_and_glitches" => {
            let cfg = golden_config(threads);
            let plan = FaultPlan::new(vec![
                (300, FaultEvent::ShortcutDown { src: 0 }),
                (500, FaultEvent::MeshLinkDown { a: 14, b: 15 }),
                (700, FaultEvent::LinkGlitch { a: 8, b: 14 }),
                (900, FaultEvent::ShortcutUp { src: 0, dst: n - 1 }),
                (1_100, FaultEvent::MeshLinkUp { a: 14, b: 15 }),
            ]);
            let spec = NetworkSpec::with_shortcuts(dims, cfg, shortcuts(dims))
                .with_fault_plan(plan);
            let mut w = SyntheticWorkload::unicast(0x5eed_0009, n, 24, horizon(&spec.config));
            Network::new(spec).run(&mut w)
        }
        "reconfigure_live" => {
            let cfg = golden_config(threads);
            let mut net = Network::new(NetworkSpec::with_shortcuts(dims, cfg, shortcuts(dims)));
            net.reconfigure(vec![Shortcut::new(2, 33), Shortcut::new(33, 2)])
                .expect("legal retune");
            let mut w =
                SyntheticWorkload::unicast(0x5eed_000a, n, 24, net.dims().nodes() as u64 + 1_700);
            net.run(&mut w)
        }
        "ringmesh_base_low_load" => {
            let fabric = ring_fabric();
            let cfg = golden_config(threads);
            let mut w =
                SyntheticWorkload::unicast(0x5eed_000b, fabric.dims().nodes(), 8, horizon(&cfg));
            Network::new(NetworkSpec::with_fabric(fabric, cfg, Vec::new())).run(&mut w)
        }
        "ringmesh_rf_adaptive" => {
            let fabric = ring_fabric();
            let cfg = golden_config(threads);
            let rn = fabric.dims().nodes();
            let mut w = SyntheticWorkload::unicast(0x5eed_000c, rn, 32, horizon(&cfg));
            Network::new(NetworkSpec::with_fabric(fabric, cfg, shortcuts(fabric.dims())))
                .run(&mut w)
        }
        "ringmesh_faults" => {
            let fabric = ring_fabric();
            let cfg = golden_config(threads);
            let rn = fabric.dims().nodes();
            // A base link of router 0 picked from the fabric itself, so the
            // case stays valid whatever the tile's ring order is.
            let nb = fabric.neighbors(0)[0];
            let plan = FaultPlan::new(vec![
                (300, FaultEvent::ShortcutDown { src: 0 }),
                (500, FaultEvent::MeshLinkDown { a: 0, b: nb }),
                (900, FaultEvent::ShortcutUp { src: 0, dst: rn - 1 }),
                (1_100, FaultEvent::MeshLinkUp { a: 0, b: nb }),
            ]);
            let spec = NetworkSpec::with_fabric(fabric, cfg, shortcuts(fabric.dims()))
                .with_fault_plan(plan);
            let mut w = SyntheticWorkload::unicast(0x5eed_000d, rn, 16, horizon(&spec.config));
            Network::new(spec).run(&mut w)
        }
        other => panic!("unknown golden case {other:?}"),
    }
}

#[test]
fn golden_stats_match_seed_engine() {
    let bless = std::env::var("GOLDEN_BLESS").is_ok();
    let mut failures = Vec::new();
    for &(name, expected) in GOLDEN {
        let stats = run_case(name, 1);
        // Campaigns off: no recovery tracker was configured, so no records
        // may leak into the stats (and none are hashed above).
        assert!(stats.recovery.is_empty(), "{name}: recovery records without a tracker");
        let actual = hash_stats(&stats);
        if bless {
            println!("    (\"{name}\", {actual:#018x}),");
        } else if actual != expected {
            failures.push(format!("{name}: expected {expected:#018x}, got {actual:#018x}"));
        }
    }
    assert!(
        failures.is_empty(),
        "RunStats diverged from the seed engine:\n  {}\n\
         The optimized engine must be bit-identical; if the change is an\n\
         intentional behavioural fix, re-bless with GOLDEN_BLESS=1.",
        failures.join("\n  ")
    );
}

/// The golden runs must themselves be deterministic: two executions of
/// the same case produce identical statistics.
#[test]
fn golden_cases_repeat_identically() {
    for &(name, _) in GOLDEN {
        let a = hash_stats(&run_case(name, 1));
        let b = hash_stats(&run_case(name, 1));
        assert_eq!(a, b, "case {name} is non-deterministic");
    }
}

/// The sharded engine must be bit-identical to the serial engine: every
/// golden hash reproduces at every thread count, against the *same*
/// pinned constants (never re-blessed per thread count). The sweep covers
/// mid-run reconfiguration (`reconfigure_live`), fault storms
/// (`faults_and_glitches`, `ringmesh_faults`), and the VCT fallback to
/// the serial path (`mc_vct_tree`). Thread counts above the router count
/// exercise the shard-clamp path.
#[test]
fn golden_stats_reproduce_at_every_thread_count() {
    let threads_env = std::env::var("GOLDEN_THREADS").ok();
    let sweep: Vec<usize> = match &threads_env {
        Some(list) => list
            .split(',')
            .map(|t| t.trim().parse().expect("GOLDEN_THREADS is a comma-separated list"))
            .collect(),
        None => vec![2, 4, 8],
    };
    let mut failures = Vec::new();
    for &threads in &sweep {
        for &(name, expected) in GOLDEN {
            let actual = hash_stats(&run_case(name, threads));
            if actual != expected {
                failures.push(format!(
                    "{name} @ {threads} threads: expected {expected:#018x}, got {actual:#018x}"
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "sharded engine diverged from the serial engine:\n  {}",
        failures.join("\n  ")
    );
}

/// The run ledger is a pure observer: every golden hash reproduces with
/// the ledger streaming, serial and sharded, against the *same* pinned
/// constants. The hash covers the simulated statistics only, so a ledger
/// that perturbed arbitration, scheduling, or fault handling anywhere in
/// the thirteen cases would show up as a hash mismatch.
#[test]
fn golden_stats_reproduce_with_ledger_enabled() {
    LEDGER_ON.with(|l| l.set(true));
    let mut failures = Vec::new();
    for &threads in &[1usize, 4] {
        for &(name, expected) in GOLDEN {
            let stats = run_case(name, threads);
            assert!(
                stats.ledger.is_some(),
                "{name} @ {threads} threads: ledger report missing"
            );
            let actual = hash_stats(&stats);
            if actual != expected {
                failures.push(format!(
                    "{name} @ {threads} threads: expected {expected:#018x}, got {actual:#018x}"
                ));
            }
        }
    }
    LEDGER_ON.with(|l| l.set(false));
    assert!(
        failures.is_empty(),
        "ledger instrumentation perturbed the engine:\n  {}",
        failures.join("\n  ")
    );
}
