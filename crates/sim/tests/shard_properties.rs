//! Sharded-engine properties: the shard partition covers every router of
//! any fabric exactly once, and the parallel engine is bit-identical to
//! the serial one — including under a correlated fault storm, the
//! adversarial case for cross-shard event ordering (mid-run table
//! rewrites, glitch retransmissions, and RF-band teardown all land at
//! cycle boundaries shared by every shard).

use proptest::prelude::*;
use rfnoc_sim::{
    shard_ranges, FaultPlan, MessageClass, MessageSpec, Network, NetworkSpec, SimConfig,
    Workload,
};
use rfnoc_topology::{FabricSpec, GridDims, Shortcut};

/// Deterministic xorshift unicast workload (mirrors the golden-stats
/// generator; no external RNG crate).
struct SyntheticUnicasts {
    state: u64,
    nodes: usize,
    load_256: u64,
    until: u64,
}

impl Workload for SyntheticUnicasts {
    fn messages_at(&mut self, cycle: u64, out: &mut Vec<MessageSpec>) {
        if cycle >= self.until {
            return;
        }
        let (nodes, load) = (self.nodes, self.load_256);
        let mut next = || {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x
        };
        for src in 0..nodes {
            if next() % 256 >= load {
                continue;
            }
            let mut dst = (next() % nodes as u64) as usize;
            if dst == src {
                dst = (dst + 1) % nodes;
            }
            let class = match next() % 3 {
                0 => MessageClass::Request,
                1 => MessageClass::Data,
                _ => MessageClass::Memory,
            };
            out.push(MessageSpec::unicast(src, dst, class));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `shard_ranges` partitions any fabric's routers: every router falls
    /// in exactly one contiguous shard, shards are ordered, and no shard
    /// is empty. Thread counts above the router count must clamp rather
    /// than emit empty shards.
    #[test]
    fn shard_partition_covers_every_router_exactly_once(
        w in 2usize..10,
        h in 2usize..10,
        tile_sel in 0usize..3,
        threads in 1usize..33,
    ) {
        let dims = GridDims::new(w, h);
        // A mesh, or a ring-mesh when a tile evenly divides the grid.
        let tiles: Vec<usize> =
            (2..=w.min(h)).filter(|t| w % t == 0 && h % t == 0).collect();
        let fabric = if tiles.is_empty() {
            FabricSpec::mesh(dims)
        } else {
            match tile_sel {
                0 => FabricSpec::mesh(dims),
                _ => FabricSpec::ring_mesh(dims, tiles[tile_sel % tiles.len()]),
            }
        };
        let n = fabric.nodes();
        let ranges = shard_ranges(n, threads);

        prop_assert!(!ranges.is_empty());
        prop_assert!(ranges.len() <= threads.min(n));
        let mut next = 0usize;
        for &(start, end) in &ranges {
            prop_assert_eq!(start, next, "shards must be contiguous and ordered");
            prop_assert!(end > start, "no empty shards");
            next = end;
        }
        prop_assert_eq!(next, n, "every router covered exactly once");
        // Balanced: shard sizes differ by at most one router.
        let sizes: Vec<usize> = ranges.iter().map(|&(s, e)| e - s).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1, "unbalanced shards: {:?}", sizes);
    }
}

/// A correlated fault storm — regional link failures, a glitch burst, and
/// the band-down-during-retune race — produces bit-identical statistics
/// at 1, 2, 4, and 8 engine threads. (The golden-stats thread sweep
/// covers the pinned scripted cases including mid-run `reconfigure`; this
/// covers the storm generator end to end.)
#[test]
fn fault_storm_stats_identical_across_thread_counts() {
    let dims = GridDims::new(8, 8);
    let fabric = FabricSpec::mesh(dims);
    let shortcuts = vec![Shortcut::new(0, 63), Shortcut::new(56, 7), Shortcut::new(7, 56)];
    let run = |threads: usize| {
        let mut cfg = SimConfig::paper_baseline().with_threads(threads);
        cfg.warmup_cycles = 500;
        cfg.measure_cycles = 6_000;
        cfg.drain_cycles = 20_000;
        let plan =
            FaultPlan::correlated(11, &fabric, &shortcuts, 2.0, 1.0, 500..6_500);
        assert!(!plan.is_empty());
        let spec = NetworkSpec::with_shortcuts(dims, cfg, shortcuts.clone())
            .with_fault_plan(plan);
        let mut w = SyntheticUnicasts {
            state: 0x5701_4a11,
            nodes: dims.nodes(),
            load_256: 20,
            until: 6_500,
        };
        Network::new(spec).run(&mut w)
    };
    let serial = run(1);
    for threads in [2usize, 4, 8] {
        let parallel = run(threads);
        assert_eq!(
            serial, parallel,
            "storm run diverged between 1 and {threads} engine threads"
        );
    }
}
