//! Fault-injection and graceful-degradation tests: RF-only fault plans
//! never lose traffic, shortcut failure converges to the equivalent
//! reduced network, transient glitches are credit-safe, and the watchdog
//! turns a partitioned mesh into a structured health report instead of a
//! silent hang.

use proptest::prelude::*;
use rfnoc_power::LinkWidth;
use rfnoc_sim::{
    FaultEvent, FaultPlan, FaultRates, HealthDiagnosis, MessageClass, MessageSpec, Network,
    NetworkSpec, ScriptedWorkload, SimConfig,
};
use rfnoc_topology::{FabricSpec, GridDims, Shortcut};

fn quick_config() -> SimConfig {
    let mut cfg = SimConfig::paper_baseline().with_link_width(LinkWidth::B16);
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 10_000;
    cfg.drain_cycles = 40_000;
    cfg
}

/// Builds a legal shortcut set from arbitrary candidate pairs.
fn legalize(n: usize, candidates: &[(usize, usize)]) -> Vec<Shortcut> {
    let mut out_used = vec![false; n];
    let mut in_used = vec![false; n];
    let mut set = Vec::new();
    for &(a, b) in candidates {
        let (a, b) = (a % n, b % n);
        if a != b && !out_used[a] && !in_used[b] {
            out_used[a] = true;
            in_used[b] = true;
            set.push(Shortcut::new(a, b));
        }
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any fault plan that only touches RF resources — shortcut
    /// transmitter failures, a whole-band failure, later repairs — leaves
    /// every packet deliverable: the mesh is intact and traffic degrades
    /// onto it. Total delivery, no watchdog trip.
    #[test]
    fn rf_only_faults_never_lose_packets(
        candidates in proptest::collection::vec((0usize..36, 0usize..36), 1..8),
        kills in proptest::collection::vec((0usize..8, 0u64..4_000), 0..8),
        band_down in proptest::collection::vec(0u64..4_000, 0..2),
        msgs in proptest::collection::vec((0usize..36, 0usize..36), 1..30),
    ) {
        let dims = GridDims::new(6, 6);
        let shortcuts = legalize(36, &candidates);
        prop_assume!(!shortcuts.is_empty());

        let mut events: Vec<(u64, FaultEvent)> = kills
            .iter()
            .map(|&(i, cycle)| {
                let s = shortcuts[i % shortcuts.len()];
                (cycle, FaultEvent::ShortcutDown { src: s.src })
            })
            .collect();
        for &cycle in &band_down {
            events.push((cycle, FaultEvent::BandDown));
        }
        let plan = FaultPlan::new(events);
        prop_assert!(plan.rf_only());

        let mut injected = Vec::new();
        let mut expected = 0u64;
        for (i, &(s, d)) in msgs.iter().enumerate() {
            if s != d {
                injected.push((
                    i as u64 * 7,
                    MessageSpec::unicast(s, d, MessageClass::Data),
                ));
                expected += 1;
            }
        }
        prop_assume!(expected > 0);

        let spec = NetworkSpec::with_shortcuts(dims, quick_config(), shortcuts)
            .with_fault_plan(plan);
        let mut network = Network::new(spec);
        let stats = network.run(&mut ScriptedWorkload::new(injected));
        prop_assert!(stats.is_healthy(), "watchdog fired: {:?}", stats.health);
        prop_assert_eq!(stats.completed_messages, expected);
        prop_assert!(!stats.saturated);
    }

    /// Seed-driven random plans restricted to RF failures (no mesh
    /// failures, no glitches) also deliver everything — exercises
    /// [`FaultPlan::random`] end to end, including repair scheduling.
    #[test]
    fn random_rf_plans_deliver_everything(
        seed in 0u64..1_000,
        msgs in proptest::collection::vec((0usize..36, 0usize..36), 1..20),
        repair in 0u64..2,
    ) {
        let dims = GridDims::new(6, 6);
        let shortcuts = vec![Shortcut::new(0, 35), Shortcut::new(30, 5)];
        let rates = FaultRates {
            shortcut_failures: 2.0,
            mesh_link_failures: 0.0,
            glitches: 0.0,
            repair_after: (repair == 1).then_some(500),
        };
        let plan = FaultPlan::random(seed, &FabricSpec::mesh(dims), &shortcuts, rates, 0..3_000);
        prop_assert!(plan.rf_only());

        let mut injected = Vec::new();
        let mut expected = 0u64;
        for (i, &(s, d)) in msgs.iter().enumerate() {
            if s != d {
                injected.push((
                    i as u64 * 11,
                    MessageSpec::unicast(s, d, MessageClass::Data),
                ));
                expected += 1;
            }
        }
        prop_assume!(expected > 0);

        let spec = NetworkSpec::with_shortcuts(dims, quick_config(), shortcuts)
            .with_fault_plan(plan);
        let mut network = Network::new(spec);
        let stats = network.run(&mut ScriptedWorkload::new(injected));
        prop_assert!(stats.is_healthy(), "watchdog fired: {:?}", stats.health);
        prop_assert_eq!(stats.completed_messages, expected);
    }
}

/// Time-spaced probe messages long after the fault has been absorbed.
fn probes(start: u64, spacing: u64, pairs: &[(usize, usize)]) -> Vec<(u64, MessageSpec)> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(s, d))| {
            (start + i as u64 * spacing, MessageSpec::unicast(s, d, MessageClass::Data))
        })
        .collect()
}

/// After a mid-run shortcut failure drains and the tables rewrite, the
/// network is *exactly* the network that never had that shortcut: the
/// same probe traffic sees identical per-message latencies.
#[test]
fn failed_shortcut_converges_to_reduced_network() {
    let dims = GridDims::new(10, 10);
    let lost = Shortcut::new(0, 99);
    let kept = Shortcut::new(90, 9);
    // Probes start at cycle 2_000 — far beyond the failure at 500 plus the
    // drain and the 99-cycle table rewrite — and are spaced so they never
    // share the network.
    let pairs = [(0, 99), (0, 99), (1, 98), (10, 89), (0, 9), (90, 9), (5, 95)];
    let workload = probes(2_000, 400, &pairs);

    let plan = FaultPlan::new(vec![(500, FaultEvent::ShortcutDown { src: lost.src })]);
    let faulted = NetworkSpec::with_shortcuts(dims, quick_config(), vec![lost, kept])
        .with_fault_plan(plan);
    let mut faulted_net = Network::new(faulted);
    let faulted_stats = faulted_net.run(&mut ScriptedWorkload::new(workload.clone()));

    let reduced = NetworkSpec::with_shortcuts(dims, quick_config(), vec![kept]);
    let mut reduced_net = Network::new(reduced);
    let reduced_stats = reduced_net.run(&mut ScriptedWorkload::new(workload));

    assert_eq!(faulted_stats.shortcut_faults, 1);
    assert!(faulted_stats.is_healthy());
    assert_eq!(faulted_stats.completed_messages, pairs.len() as u64);
    assert_eq!(reduced_stats.completed_messages, pairs.len() as u64);
    assert_eq!(
        faulted_stats.message_latencies, reduced_stats.message_latencies,
        "post-recovery latencies must match the never-had-it network"
    );
    assert_eq!(faulted_stats.hops_sum, reduced_stats.hops_sum);
    assert_eq!(faulted_net.active_shortcuts(), &[kept]);
}

/// Transient glitches delay flits (receiver drop + upstream retransmit)
/// without losing packets or corrupting credit accounting.
#[test]
fn glitches_delay_but_never_lose_traffic() {
    let dims = GridDims::new(6, 6);
    // A stream crossing link 0→1 with glitches landing on it repeatedly.
    let events: Vec<(u64, FaultEvent)> =
        (0..40).map(|i| (10 + i * 13, FaultEvent::LinkGlitch { a: 0, b: 1 })).collect();
    let plan = FaultPlan::new(events);
    let workload: Vec<(u64, MessageSpec)> =
        (0..50).map(|i| (i * 12, MessageSpec::unicast(0, 5, MessageClass::Data))).collect();

    let spec = NetworkSpec::mesh_baseline(dims, quick_config()).with_fault_plan(plan);
    let mut network = Network::new(spec);
    let stats = network.run(&mut ScriptedWorkload::new(workload));
    assert!(stats.is_healthy());
    assert_eq!(stats.completed_messages, 50);
    assert!(
        stats.retransmitted_flits > 0,
        "glitches on a busy link must hit at least one flit"
    );
}

/// Mesh link failures that cut off a router: packets headed there block
/// at the break, and the watchdog returns a structured [`HealthReport`]
/// diagnosing the partition well before the drain limit — instead of
/// silently burning the whole drain budget.
#[test]
fn watchdog_reports_partition_instead_of_hanging() {
    let dims = GridDims::new(4, 4);
    // Node 0's only links are to 1 (east) and 4 (south); cutting both
    // strands it.
    let plan = FaultPlan::new(vec![
        (10, FaultEvent::MeshLinkDown { a: 0, b: 1 }),
        (10, FaultEvent::MeshLinkDown { a: 0, b: 4 }),
    ]);
    let mut cfg = quick_config();
    cfg.watchdog_cycles = 300;
    cfg.measure_cycles = 1_000;
    cfg.drain_cycles = 100_000;
    let spec = NetworkSpec::mesh_baseline(dims, cfg).with_fault_plan(plan);
    let mut network = Network::new(spec);

    let stats = network.run(&mut ScriptedWorkload::new(vec![(
        50,
        MessageSpec::unicast(5, 0, MessageClass::Data),
    )]));

    let health = stats.health.expect("watchdog must fire on a partitioned destination");
    assert_eq!(health.diagnosis, HealthDiagnosis::Partitioned);
    assert_eq!(stats.completed_messages, 0);
    assert!(
        stats.end_cycle < 5_000,
        "watchdog must fire before the drain limit, ended at {}",
        stats.end_cycle
    );
    assert_eq!(network.mesh_link_failures(), 2);
    // The report pinpoints the stall window.
    assert!(health.stalled_for >= 300);
    assert!(health.outstanding >= 1);
}

/// The same deadline-style hang is also caught on table-routed networks,
/// and a repaired link clears the partition: the identical scenario with
/// a repair completes normally.
#[test]
fn repaired_link_restores_delivery() {
    let dims = GridDims::new(4, 4);
    let plan = FaultPlan::new(vec![
        (10, FaultEvent::MeshLinkDown { a: 0, b: 1 }),
        (10, FaultEvent::MeshLinkDown { a: 0, b: 4 }),
        (400, FaultEvent::MeshLinkUp { a: 0, b: 4 }),
    ]);
    let mut cfg = quick_config();
    cfg.watchdog_cycles = 2_000;
    cfg.measure_cycles = 1_000;
    let spec = NetworkSpec::mesh_baseline(dims, cfg).with_fault_plan(plan);
    let mut network = Network::new(spec);

    let stats = network.run(&mut ScriptedWorkload::new(vec![(
        50,
        MessageSpec::unicast(5, 0, MessageClass::Data),
    )]));
    assert!(stats.is_healthy(), "repair should beat the watchdog: {:?}", stats.health);
    assert_eq!(stats.completed_messages, 1);
    assert_eq!(stats.repairs, 1);
}
