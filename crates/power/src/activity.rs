//! Activity counters gathered from a simulation run.

/// Transmission-flow statistics for one simulation run, used to convert the
/// energy models into average instantaneous power (paper §4.3: "Using the
/// router, link and RF-I power models in conjunction with transmission flow
/// statistics gathered from our microarchitecture simulator").
///
/// Counters are in **payload bytes**: a partially-filled flit (e.g. a 7-byte
/// request in a 16-byte flit) only switches the datapath bytes it occupies,
/// so energy is charged per occupied byte rather than per flit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ActivityCounters {
    /// Network cycles simulated.
    pub cycles: u64,
    /// Payload bytes traversing each router (indexed by router id).
    pub router_bytes: Vec<u64>,
    /// Total payload byte-hops over conventional mesh links (wire shortcuts
    /// count once per equivalent mesh hop of their length).
    pub link_byte_hops: u64,
    /// Total payload bytes transmitted over RF-I (shortcuts and multicast).
    pub rf_bytes: u64,
}

impl ActivityCounters {
    /// Zeroed counters for a network of `routers` routers.
    pub fn new(routers: usize) -> Self {
        Self {
            cycles: 0,
            router_bytes: vec![0; routers],
            link_byte_hops: 0,
            rf_bytes: 0,
        }
    }

    /// Records `bytes` of traversal at `router`.
    ///
    /// # Panics
    ///
    /// Panics if `router` is out of range.
    pub fn record_router_traversal(&mut self, router: usize, bytes: u64) {
        self.router_bytes[router] += bytes;
    }

    /// Total byte traversals summed over all routers.
    pub fn total_router_bytes(&self) -> u64 {
        self.router_bytes.iter().sum()
    }

    /// Merges another set of counters into this one (e.g. across trace
    /// segments).
    ///
    /// # Panics
    ///
    /// Panics if the router counts differ.
    pub fn merge(&mut self, other: &ActivityCounters) {
        assert_eq!(
            self.router_bytes.len(),
            other.router_bytes.len(),
            "cannot merge counters for different networks"
        );
        self.cycles += other.cycles;
        self.link_byte_hops += other.link_byte_hops;
        self.rf_bytes += other.rf_bytes;
        for (a, b) in self.router_bytes.iter_mut().zip(&other.router_bytes) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = ActivityCounters::new(3);
        a.cycles = 10;
        a.record_router_traversal(0, 5);
        let mut b = ActivityCounters::new(3);
        b.cycles = 20;
        b.record_router_traversal(0, 1);
        b.record_router_traversal(2, 7);
        b.link_byte_hops = 4;
        b.rf_bytes = 32;
        a.merge(&b);
        assert_eq!(a.cycles, 30);
        assert_eq!(a.router_bytes, vec![6, 0, 7]);
        assert_eq!(a.link_byte_hops, 4);
        assert_eq!(a.rf_bytes, 32);
        assert_eq!(a.total_router_bytes(), 13);
    }

    #[test]
    #[should_panic(expected = "different networks")]
    fn merge_size_mismatch_panics() {
        ActivityCounters::new(2).merge(&ActivityCounters::new(3));
    }
}
