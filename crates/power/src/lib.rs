//! Physical-design models for NoC power and area evaluation (paper §4.3).
//!
//! Three component models, combined by [`NocPowerModel`]:
//!
//! * [`RouterEnergyModel`] / [`RouterAreaModel`] — Orion-style parametric
//!   router models. Dynamic energy per flit traversal is dominated by the
//!   crossbar (`∝ in_ports · out_ports · width²`), with buffer
//!   (`∝ width`) and fixed allocator terms; area uses the same structure and
//!   is calibrated to reproduce the paper's Table 2 *exactly* (see
//!   `DESIGN.md`, "Calibration notes").
//! * [`LinkModel`] — the CosiNoC/IPEM repeated-wire model of Figure 6:
//!   `E_link = 0.25·V²_DD·(k_opt(c₀+c_p)/h_opt + c_wire)` per bit per unit
//!   length, with closed-form optimal repeater sizing `k_opt` and spacing
//!   `h_opt`, plus repeater leakage and active-layer repeater area.
//! * [`RfModel`] — RF-I transmission-line endpoints: 0.75 pJ/bit transmit
//!   energy and 124 µm²/Gbps active area (paper §4.3), plus a static
//!   carrier/mixer bias term per provisioned Gbps.
//!
//! Power is reported as average instantaneous power over a run, from
//! [`ActivityCounters`] gathered by the simulator.
//!
//! # Example
//!
//! ```
//! use rfnoc_power::{ActivityCounters, DesignSpec, LinkWidth, NocPowerModel};
//!
//! let model = NocPowerModel::paper_32nm();
//! let design = DesignSpec::mesh_baseline(100, 360, LinkWidth::B16);
//! let mut activity = ActivityCounters::new(100);
//! activity.cycles = 1_000_000;
//! activity.record_router_traversal(42, 300);
//! activity.link_byte_hops = 200;
//! let power = model.power(&design, &activity);
//! assert!(power.total_w() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod design;
mod link;
mod report;
mod rf;
mod router;
mod tech;

pub use activity::ActivityCounters;
pub use design::{DesignSpec, LinkWidth, RouterConfig};
pub use link::LinkModel;
pub use report::{AreaBreakdown, NocPowerModel, PowerBreakdown};
pub use rf::{adaptive_provision_gbps, static_provision_gbps, RfModel};
pub use router::{RouterAreaModel, RouterEnergyModel};
pub use tech::TechParams;
