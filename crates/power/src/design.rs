//! Design specifications: what is on the die, independent of activity.

/// Width of a conventional mesh link in bytes per network cycle.
///
/// The paper's baseline is 16B; the bandwidth-reduction study (Figure 8)
/// sweeps {16B, 8B, 4B}.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkWidth {
    /// 4 bytes per network cycle.
    B4,
    /// 8 bytes per network cycle.
    B8,
    /// 16 bytes per network cycle.
    B16,
}

impl LinkWidth {
    /// Link width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            LinkWidth::B4 => 4,
            LinkWidth::B8 => 8,
            LinkWidth::B16 => 16,
        }
    }

    /// Link width in bits.
    pub fn bits(self) -> u32 {
        self.bytes() * 8
    }

    /// Number of flits needed to carry `bytes` of message payload.
    ///
    /// # Example
    ///
    /// ```
    /// use rfnoc_power::LinkWidth;
    /// assert_eq!(LinkWidth::B4.flits_for(39), 10);
    /// assert_eq!(LinkWidth::B16.flits_for(39), 3);
    /// ```
    pub fn flits_for(self, bytes: u32) -> u32 {
        bytes.div_ceil(self.bytes()).max(1)
    }

    /// All widths evaluated in the paper, widest first.
    pub fn all() -> [LinkWidth; 3] {
        [LinkWidth::B16, LinkWidth::B8, LinkWidth::B4]
    }
}

impl std::fmt::Display for LinkWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

/// Port configuration of a single router.
///
/// A standard mesh router has five input and five output ports (N/S/E/W +
/// local). RF-enabled routers add a sixth port on the transmit side, the
/// receive side, or both (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouterConfig {
    /// Number of input ports.
    pub in_ports: u32,
    /// Number of output ports.
    pub out_ports: u32,
}

impl RouterConfig {
    /// A standard 5-port mesh router.
    pub fn standard() -> Self {
        Self { in_ports: 5, out_ports: 5 }
    }

    /// An RF transmit-only router: a sixth *output* port to the RF-I Tx.
    pub fn rf_tx() -> Self {
        Self { in_ports: 5, out_ports: 6 }
    }

    /// An RF receive-only router: a sixth *input* port from the RF-I Rx.
    pub fn rf_rx() -> Self {
        Self { in_ports: 6, out_ports: 5 }
    }

    /// A fully RF-enabled router with both a tunable Tx and Rx (adaptive
    /// access points).
    pub fn rf_both() -> Self {
        Self { in_ports: 6, out_ports: 6 }
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// Everything the power/area models need to know about a design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpec {
    /// Per-router port configuration (length = number of routers).
    pub routers: Vec<RouterConfig>,
    /// Number of *directed* conventional mesh links.
    pub mesh_links: usize,
    /// Conventional link width.
    pub link_width: LinkWidth,
    /// Provisioned RF-I bandwidth in Gbps (0 when no RF-I is present).
    ///
    /// Static shortcut designs provision `shortcuts × 16B × 2 GHz`
    /// (16 shortcuts → 4096 Gbps → 0.51 mm²); adaptive designs provision a
    /// tunable 256 Gbps access point per RF-enabled router (50 APs →
    /// 12 800 Gbps → 1.59 mm²), reproducing Table 2's RF-I column.
    pub rf_provisioned_gbps: f64,
    /// Whether routers carry VCT multicast tree tables (adds the 5.4% table
    /// area reported in §5.2).
    pub vct_tables: bool,
}

impl DesignSpec {
    /// A plain mesh baseline: `routers` standard 5-port routers, no RF-I.
    pub fn mesh_baseline(routers: usize, mesh_links: usize, width: LinkWidth) -> Self {
        Self {
            routers: vec![RouterConfig::standard(); routers],
            mesh_links,
            link_width: width,
            rf_provisioned_gbps: 0.0,
            vct_tables: false,
        }
    }

    /// Number of routers in the design.
    pub fn router_count(&self) -> usize {
        self.routers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_counts_match_paper_message_sizes() {
        // request 7B, data 39B, memory 132B (paper §4.1)
        assert_eq!(LinkWidth::B16.flits_for(7), 1);
        assert_eq!(LinkWidth::B16.flits_for(39), 3);
        assert_eq!(LinkWidth::B16.flits_for(132), 9);
        assert_eq!(LinkWidth::B8.flits_for(7), 1);
        assert_eq!(LinkWidth::B8.flits_for(39), 5);
        assert_eq!(LinkWidth::B8.flits_for(132), 17);
        assert_eq!(LinkWidth::B4.flits_for(7), 2);
        assert_eq!(LinkWidth::B4.flits_for(39), 10);
        assert_eq!(LinkWidth::B4.flits_for(132), 33);
    }

    #[test]
    fn zero_byte_message_still_one_flit() {
        assert_eq!(LinkWidth::B16.flits_for(0), 1);
    }

    #[test]
    fn display_width() {
        assert_eq!(LinkWidth::B16.to_string(), "16B");
    }
}
