//! RF-I transmission-line endpoint power and area (paper §4.3).

/// RF-I component model.
///
/// The paper projects, for 32 nm: **0.75 pJ per bit transmitted** and
/// **124 µm² of active-layer silicon per Gbps** of provisioned bandwidth
/// (citing its references \[5\] and \[7\]). Because RF-I modulates data onto a
/// continuously-driven carrier, the mixers and carrier distribution draw a
/// *static* bias current whether or not data flows; we model that as a
/// per-provisioned-Gbps term calibrated to the paper's reported RF power
/// overheads (+11% static / +24% adaptive-50 / +15% adaptive-25, Figure 7).
#[derive(Debug, Clone, PartialEq)]
pub struct RfModel {
    /// Dynamic transmit energy per bit (pJ).
    pub dyn_pj_per_bit: f64,
    /// Active-layer area per provisioned Gbps (µm²).
    pub area_um2_per_gbps: f64,
    /// Static (carrier/mixer bias) power per provisioned Gbps (W).
    pub static_w_per_gbps: f64,
}

impl RfModel {
    /// The paper's 32 nm projections with calibrated static overhead.
    pub fn paper_32nm() -> Self {
        Self {
            dyn_pj_per_bit: 0.75,
            area_um2_per_gbps: 124.0,
            static_w_per_gbps: 1.6e-5,
        }
    }

    /// Dynamic energy (pJ) for transmitting `bytes` over the RF-I.
    pub fn dynamic_energy_pj(&self, bytes: u64) -> f64 {
        self.dyn_pj_per_bit * bytes as f64 * 8.0
    }

    /// Static power (W) for `provisioned_gbps` of tunable RF-I bandwidth.
    pub fn static_power_w(&self, provisioned_gbps: f64) -> f64 {
        self.static_w_per_gbps * provisioned_gbps
    }

    /// Active-layer area (mm²) for `provisioned_gbps`.
    pub fn area_mm2(&self, provisioned_gbps: f64) -> f64 {
        self.area_um2_per_gbps * provisioned_gbps * 1e-6
    }
}

impl Default for RfModel {
    fn default() -> Self {
        Self::paper_32nm()
    }
}

/// Provisioned Gbps for a *static* shortcut design: each of the `shortcuts`
/// fixed 16B channels runs at the 2 GHz network clock.
///
/// 16 shortcuts → 4096 Gbps → 0.51 mm², matching Table 2's "Arch-Specific"
/// RF-I area.
pub fn static_provision_gbps(shortcuts: usize, shortcut_bytes: u32, clock_hz: f64) -> f64 {
    shortcuts as f64 * shortcut_bytes as f64 * 8.0 * clock_hz / 1e9
}

/// Provisioned Gbps for an *adaptive* design: every RF-enabled access point
/// carries a tunable 16B×2GHz Tx/Rx pair.
///
/// 50 access points → 12 800 Gbps → 1.59 mm², matching Table 2's
/// "+50 RF-I APs" RF-I area.
pub fn adaptive_provision_gbps(access_points: usize, shortcut_bytes: u32, clock_hz: f64) -> f64 {
    access_points as f64 * shortcut_bytes as f64 * 8.0 * clock_hz / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rf_areas_reproduced() {
        let rf = RfModel::paper_32nm();
        let static_gbps = static_provision_gbps(16, 16, 2.0e9);
        assert_eq!(static_gbps, 4096.0);
        assert!((rf.area_mm2(static_gbps) - 0.51).abs() < 0.01);
        let adaptive_gbps = adaptive_provision_gbps(50, 16, 2.0e9);
        assert_eq!(adaptive_gbps, 12800.0);
        assert!((rf.area_mm2(adaptive_gbps) - 1.59).abs() < 0.01);
    }

    #[test]
    fn dynamic_energy_per_bit() {
        let rf = RfModel::paper_32nm();
        // one 16B flit = 128 bits = 96 pJ
        assert!((rf.dynamic_energy_pj(16) - 96.0).abs() < 1e-9);
    }

    #[test]
    fn static_power_scales_with_provision() {
        let rf = RfModel::paper_32nm();
        let p50 = rf.static_power_w(12800.0);
        let p25 = rf.static_power_w(6400.0);
        assert!((p50 / p25 - 2.0).abs() < 1e-9);
    }
}
