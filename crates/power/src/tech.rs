//! Technology parameters (paper Figure 6a) for the 32 nm node.

/// Process and circuit parameters used by the link and leakage models.
///
/// Symbols follow Figure 6(a) of the paper. The paper's own table of values
/// is not legible in the source text, so the defaults are ITRS-class 32 nm
/// values chosen to reproduce the paper's published relative results; see
/// `DESIGN.md` ("Calibration notes").
#[derive(Debug, Clone, PartialEq)]
pub struct TechParams {
    /// Supply voltage `V_DD` (volts).
    pub vdd_v: f64,
    /// Input capacitance of a minimum-size repeater `c₀` (farads).
    pub c0_f: f64,
    /// Output (parasitic) capacitance of a minimum-size repeater `c_p`
    /// (farads).
    pub cp_f: f64,
    /// Wire capacitance per mm `c_wire` (farads/mm).
    pub cwire_f_per_mm: f64,
    /// Output resistance of a minimum-size repeater `r₀` (ohms).
    pub r0_ohm: f64,
    /// Wire resistance per mm `r_wire` (ohms/mm).
    pub rwire_ohm_per_mm: f64,
    /// Sub-threshold leakage current per µm of transistor width `I_off`
    /// (amperes/µm).
    pub ioff_a_per_um: f64,
    /// Minimum transistor width `w_min` (µm).
    pub wmin_um: f64,
    /// Active-layer area of a minimum-size repeater (µm²).
    pub min_repeater_area_um2: f64,
    /// Physical distance `D` between adjacent routers (mm). The paper's
    /// die is 400 mm²; a 10×10 grid gives 2 mm links.
    pub hop_length_mm: f64,
    /// Network clock frequency (Hz); the paper's interconnect runs at 2 GHz.
    pub clock_hz: f64,
    /// Router leakage power density (W/mm² of router area). Calibrated so
    /// leakage is a small, area-proportional share of NoC power at the
    /// paper's reference load.
    pub router_leak_w_per_mm2: f64,
}

impl TechParams {
    /// The 32 nm parameter set used throughout the reproduction.
    pub fn paper_32nm() -> Self {
        Self {
            vdd_v: 0.9,
            c0_f: 0.25e-15,
            cp_f: 0.15e-15,
            cwire_f_per_mm: 12e-15,
            r0_ohm: 4_000.0,
            rwire_ohm_per_mm: 250.0,
            ioff_a_per_um: 50e-9,
            wmin_um: 0.05,
            min_repeater_area_um2: 0.0396,
            hop_length_mm: 2.0,
            clock_hz: 2.0e9,
            router_leak_w_per_mm2: 1.7e-3,
        }
    }

    /// Optimal repeater size `k_opt = sqrt(r₀·c_wire / (r_wire·(c₀+c_p)))`
    /// (first equation of Figure 6b), in multiples of the minimum repeater.
    pub fn k_opt(&self) -> f64 {
        (self.r0_ohm * self.cwire_f_per_mm
            / (self.rwire_ohm_per_mm * (self.c0_f + self.cp_f)))
            .sqrt()
    }

    /// Optimal inter-repeater distance
    /// `h_opt = sqrt(2·r₀·(c₀+c_p) / (r_wire·c_wire))` in mm — the quantity
    /// the paper obtained from IPEM's buffer-insertion optimisation.
    pub fn h_opt_mm(&self) -> f64 {
        (2.0 * self.r0_ohm * (self.c0_f + self.cp_f)
            / (self.rwire_ohm_per_mm * self.cwire_f_per_mm))
            .sqrt()
    }

    /// Link dynamic energy per bit per mm (joules):
    /// `E_link = 0.25·V²_DD·(k_opt·(c₀+c_p)/h_opt + c_wire)`.
    pub fn link_energy_j_per_bit_mm(&self) -> f64 {
        0.25 * self.vdd_v * self.vdd_v
            * (self.k_opt() * (self.c0_f + self.cp_f) / self.h_opt_mm() + self.cwire_f_per_mm)
    }

    /// Number of repeaters on one wire of a router-to-router link.
    pub fn repeaters_per_wire(&self) -> usize {
        (self.hop_length_mm / self.h_opt_mm()).ceil() as usize
    }

    /// Leakage power of one optimally-sized repeater (watts):
    /// `k_opt · w_min · I_off · V_DD`.
    pub fn repeater_leak_w(&self) -> f64 {
        self.k_opt() * self.wmin_um * self.ioff_a_per_um * self.vdd_v
    }

    /// Active-layer area of one optimally-sized repeater (mm²).
    pub fn repeater_area_mm2(&self) -> f64 {
        self.k_opt() * self.min_repeater_area_um2 * 1e-6
    }
}

impl Default for TechParams {
    fn default() -> Self {
        Self::paper_32nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities_are_sane() {
        let t = TechParams::paper_32nm();
        let k = t.k_opt();
        assert!(k > 10.0 && k < 100.0, "k_opt = {k}");
        let h = t.h_opt_mm();
        assert!(h > 0.2 && h < 2.0, "h_opt = {h} mm");
        // 32 nm repeated global wire: a few to a few tens of fJ/bit/mm
        let e = t.link_energy_j_per_bit_mm();
        assert!(e > 1e-15 && e < 1e-13, "E_link = {e} J/bit/mm");
    }

    #[test]
    fn k_opt_closed_form() {
        let t = TechParams::paper_32nm();
        // sqrt(4000 * 12e-15 / (250 * 0.4e-15)) = sqrt(480) = 21.9
        assert!((t.k_opt() - 480.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn h_opt_closed_form() {
        let t = TechParams::paper_32nm();
        // sqrt(2*4000*0.4e-15 / (250 * 12e-15)) = sqrt(16/15) mm
        assert!((t.h_opt_mm() - (16.0_f64 / 15.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn repeater_count_covers_hop() {
        let t = TechParams::paper_32nm();
        assert_eq!(t.repeaters_per_wire(), 2); // 2 mm / 1.03 mm rounded up
    }

    #[test]
    fn rf_beats_repeated_wire_cross_chip() {
        // The paper's motivating comparison: 0.75 pJ/bit RF-I vs a repeated
        // RC wire across a 20 mm die.
        let t = TechParams::paper_32nm();
        let wire_cross_chip_pj = t.link_energy_j_per_bit_mm() * 20.0 * 1e12;
        // The repeated wire must cost at least a comparable amount, keeping
        // RF-I's 0.75 pJ/bit competitive for long hauls once router
        // traversals along the multi-hop path are added.
        assert!(wire_cross_chip_pj > 0.05, "wire = {wire_cross_chip_pj} pJ/bit");
    }
}
