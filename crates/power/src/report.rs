//! Combined NoC power/area evaluation and reports.

use crate::activity::ActivityCounters;
use crate::design::DesignSpec;
use crate::link::LinkModel;
use crate::rf::RfModel;
use crate::router::{RouterAreaModel, RouterEnergyModel};
use crate::tech::TechParams;
use std::fmt;

/// Per-component average power (watts) for one run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Router dynamic (crossbar + buffer + allocation) power.
    pub router_dynamic_w: f64,
    /// Router leakage power.
    pub router_leakage_w: f64,
    /// Conventional link dynamic power.
    pub link_dynamic_w: f64,
    /// Conventional link (repeater) leakage power.
    pub link_leakage_w: f64,
    /// RF-I dynamic (modulation) power.
    pub rf_dynamic_w: f64,
    /// RF-I static (carrier/mixer bias) power.
    pub rf_static_w: f64,
}

impl PowerBreakdown {
    /// Total NoC power in watts.
    pub fn total_w(&self) -> f64 {
        self.router_dynamic_w
            + self.router_leakage_w
            + self.link_dynamic_w
            + self.link_leakage_w
            + self.rf_dynamic_w
            + self.rf_static_w
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.3} W (router dyn {:.3} + leak {:.3}, link dyn {:.3} + leak {:.3}, rf dyn {:.3} + static {:.3})",
            self.total_w(),
            self.router_dynamic_w,
            self.router_leakage_w,
            self.link_dynamic_w,
            self.link_leakage_w,
            self.rf_dynamic_w,
            self.rf_static_w
        )
    }
}

/// Active-layer silicon area (mm²), broken down as in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// Total router area (crossbars, buffers, VCT tables if present).
    pub router_mm2: f64,
    /// Total link repeater area.
    pub link_mm2: f64,
    /// Total RF-I transceiver area.
    pub rf_mm2: f64,
}

impl AreaBreakdown {
    /// Total NoC active-layer area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.router_mm2 + self.link_mm2 + self.rf_mm2
    }
}

impl fmt::Display for AreaBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.2} mm² (router {:.2}, link {:.2}, rf {:.2})",
            self.total_mm2(),
            self.router_mm2,
            self.link_mm2,
            self.rf_mm2
        )
    }
}

/// The complete NoC physical model: technology + router + link + RF-I.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NocPowerModel {
    /// Technology parameters (Figure 6a).
    pub tech: TechParams,
    /// Router dynamic-energy model.
    pub router_energy: RouterEnergyModel,
    /// Router area model.
    pub router_area: RouterAreaModel,
    /// Link model (Figure 6b equations).
    pub link: LinkModel,
    /// RF-I endpoint model.
    pub rf: RfModel,
}

impl NocPowerModel {
    /// The calibrated 32 nm model used for all paper reproductions.
    pub fn paper_32nm() -> Self {
        let tech = TechParams::paper_32nm();
        let link = LinkModel::new(&tech);
        Self {
            tech,
            router_energy: RouterEnergyModel::paper_32nm(),
            router_area: RouterAreaModel::paper_32nm(),
            link,
            rf: RfModel::paper_32nm(),
        }
    }

    /// Average instantaneous power of `design` over the run described by
    /// `activity`.
    ///
    /// # Panics
    ///
    /// Panics if `activity.cycles == 0` or the router counts disagree.
    pub fn power(&self, design: &DesignSpec, activity: &ActivityCounters) -> PowerBreakdown {
        assert!(activity.cycles > 0, "activity must cover at least one cycle");
        assert_eq!(
            design.router_count(),
            activity.router_bytes.len(),
            "design and activity disagree on router count"
        );
        let seconds = activity.cycles as f64 / self.tech.clock_hz;
        let width = design.link_width;

        let mut router_dyn_pj = 0.0;
        for (config, &bytes) in design.routers.iter().zip(&activity.router_bytes) {
            router_dyn_pj += bytes as f64 * self.router_energy.energy_per_byte_pj(*config, width);
        }
        let link_dyn_pj = activity.link_byte_hops as f64 * self.link.energy_per_byte_pj();
        let rf_dyn_pj = self.rf.dynamic_energy_pj(activity.rf_bytes);

        let router_leak_w: f64 = design
            .routers
            .iter()
            .map(|c| self.router_area.area_mm2(*c, width) * self.tech.router_leak_w_per_mm2)
            .sum();
        let link_leak_w = design.mesh_links as f64 * self.link.leakage_w(width);
        let rf_static_w = self.rf.static_power_w(design.rf_provisioned_gbps);

        PowerBreakdown {
            router_dynamic_w: router_dyn_pj * 1e-12 / seconds,
            router_leakage_w: router_leak_w,
            link_dynamic_w: link_dyn_pj * 1e-12 / seconds,
            link_leakage_w: link_leak_w,
            rf_dynamic_w: rf_dyn_pj * 1e-12 / seconds,
            rf_static_w,
        }
    }

    /// Active-layer area of `design` (Table 2 columns).
    pub fn area(&self, design: &DesignSpec) -> AreaBreakdown {
        let width = design.link_width;
        let mut router_mm2: f64 = design
            .routers
            .iter()
            .map(|c| self.router_area.area_mm2(*c, width))
            .sum();
        if design.vct_tables {
            router_mm2 += design.router_count() as f64 * self.router_area.vct_table_mm2;
        }
        AreaBreakdown {
            router_mm2,
            link_mm2: design.mesh_links as f64 * self.link.area_mm2(width),
            rf_mm2: self.rf.area_mm2(design.rf_provisioned_gbps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{LinkWidth, RouterConfig};
    use crate::rf::{adaptive_provision_gbps, static_provision_gbps};

    /// Synthetic reference activity: the same byte demand carried at each
    /// width, matching the paper's fixed-workload power comparison.
    fn reference_activity(_width: LinkWidth, routers: usize) -> ActivityCounters {
        let cycles = 1_000_000u64;
        // ~10 payload bytes injected per cycle network-wide, average route
        // of 7 mesh hops → 8 router traversals per packet.
        let bytes_total = 10u64 * cycles;
        let mut a = ActivityCounters::new(routers);
        a.cycles = cycles;
        for r in 0..routers {
            a.router_bytes[r] = bytes_total * 8 / routers as u64;
        }
        a.link_byte_hops = bytes_total * 7;
        a
    }

    #[test]
    fn bandwidth_reduction_power_anchors() {
        // Paper §5.1.2: halving to 8B saves ~48% power, 4B saves ~72%.
        let model = NocPowerModel::paper_32nm();
        let power_at = |w: LinkWidth| {
            let design = DesignSpec::mesh_baseline(100, 360, w);
            model.power(&design, &reference_activity(w, 100)).total_w()
        };
        let p16 = power_at(LinkWidth::B16);
        let p8 = power_at(LinkWidth::B8);
        let p4 = power_at(LinkWidth::B4);
        let s8 = 1.0 - p8 / p16;
        let s4 = 1.0 - p4 / p16;
        assert!((s8 - 0.48).abs() < 0.06, "8B saving {s8:.3}, paper 0.48");
        assert!((s4 - 0.72).abs() < 0.06, "4B saving {s4:.3}, paper 0.72");
    }

    #[test]
    fn table2_totals_reproduced() {
        let model = NocPowerModel::paper_32nm();
        // (routers, rf gbps, width, expected total) rows of Table 2
        let std = RouterConfig::standard();
        let both = RouterConfig::rf_both();
        let rows: Vec<(Vec<RouterConfig>, f64, LinkWidth, f64)> = vec![
            (vec![std; 100], 0.0, LinkWidth::B16, 30.29),
            (vec![std; 100], 0.0, LinkWidth::B8, 9.38),
            (vec![std; 100], 0.0, LinkWidth::B4, 3.25),
            (
                [vec![both; 50], vec![std; 50]].concat(),
                adaptive_provision_gbps(50, 16, 2.0e9),
                LinkWidth::B16,
                37.66,
            ),
            (
                [vec![both; 50], vec![std; 50]].concat(),
                adaptive_provision_gbps(50, 16, 2.0e9),
                LinkWidth::B8,
                12.60,
            ),
            (
                [vec![both; 50], vec![std; 50]].concat(),
                adaptive_provision_gbps(50, 16, 2.0e9),
                LinkWidth::B4,
                5.34,
            ),
        ];
        for (routers, rf_gbps, width, expected) in rows {
            let design = DesignSpec {
                routers,
                mesh_links: 360,
                link_width: width,
                rf_provisioned_gbps: rf_gbps,
                vct_tables: false,
            };
            let total = model.area(&design).total_mm2();
            assert!(
                (total - expected).abs() / expected < 0.05,
                "width {width}: got {total:.2}, Table 2 says {expected}"
            );
        }
    }

    #[test]
    fn arch_specific_static_rf_area() {
        // Table 2 "Mesh (16B) Arch-Specific": 16 Tx + 16 Rx routers,
        // 4096 Gbps static provision → total 32.65.
        let model = NocPowerModel::paper_32nm();
        let mut routers = vec![RouterConfig::standard(); 68];
        routers.extend(vec![RouterConfig::rf_tx(); 16]);
        routers.extend(vec![RouterConfig::rf_rx(); 16]);
        let design = DesignSpec {
            routers,
            mesh_links: 360,
            link_width: LinkWidth::B16,
            rf_provisioned_gbps: static_provision_gbps(16, 16, 2.0e9),
            vct_tables: false,
        };
        let total = model.area(&design).total_mm2();
        assert!((total - 32.65).abs() / 32.65 < 0.05, "got {total:.2}");
    }

    #[test]
    fn area_savings_headline() {
        // "Using 50 access points on a 4B mesh enables an area reduction of
        // 82.3% compared to the baseline 16B mesh" (§5.1.2).
        let model = NocPowerModel::paper_32nm();
        let base = model
            .area(&DesignSpec::mesh_baseline(100, 360, LinkWidth::B16))
            .total_mm2();
        let adaptive = DesignSpec {
            routers: [vec![RouterConfig::rf_both(); 50], vec![RouterConfig::standard(); 50]]
                .concat(),
            mesh_links: 360,
            link_width: LinkWidth::B4,
            rf_provisioned_gbps: adaptive_provision_gbps(50, 16, 2.0e9),
            vct_tables: false,
        };
        let reduced = model.area(&adaptive).total_mm2();
        let saving = 1.0 - reduced / base;
        assert!((saving - 0.823).abs() < 0.02, "area saving {saving:.3}");
    }

    #[test]
    fn vct_tables_add_area() {
        let model = NocPowerModel::paper_32nm();
        let mut design = DesignSpec::mesh_baseline(100, 360, LinkWidth::B16);
        let base = model.area(&design).total_mm2();
        design.vct_tables = true;
        let vct = model.area(&design).total_mm2();
        // §5.2: ~5.4% silicon area cost for VCT table structures.
        let overhead = vct / base - 1.0;
        assert!((overhead - 0.054).abs() < 0.01, "VCT overhead {overhead:.3}");
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_cycle_power_panics() {
        let model = NocPowerModel::paper_32nm();
        let design = DesignSpec::mesh_baseline(4, 8, LinkWidth::B16);
        model.power(&design, &ActivityCounters::new(4));
    }

    #[test]
    fn power_display_nonempty() {
        let model = NocPowerModel::paper_32nm();
        let design = DesignSpec::mesh_baseline(100, 360, LinkWidth::B16);
        let p = model.power(&design, &reference_activity(LinkWidth::B16, 100));
        assert!(p.to_string().contains("total"));
        assert!(model.area(&design).to_string().contains("router"));
    }
}
