//! Orion-style parametric router energy and area models.

use crate::design::{LinkWidth, RouterConfig};

/// Dynamic energy consumed per payload byte traversing one router.
///
/// `e = K_xbar · in · out · w + K_buf` (picojoules per byte, `w` in bytes):
/// a crossbar term whose *per-byte* cost grows with datapath width (the
/// whole `w`-byte crossbar column toggles per flit ⇒ per-flit energy
/// `∝ w²` ⇒ per-byte `∝ w`) and is bilinear in port count, plus a
/// width-independent buffer read/write + allocation term. The crossbar
/// dominance reproduces the paper's published NoC power scaling (−48% at
/// 8B, −72% at 4B; Figure 8) and the power overhead of 6-port RF-enabled
/// routers that melts away as the mesh narrows (Figures 7–8).
#[derive(Debug, Clone, PartialEq)]
pub struct RouterEnergyModel {
    /// Crossbar coefficient (pJ per byte, per port², per byte of width).
    pub xbar_pj_per_byte_port2_width: f64,
    /// Buffer read+write + allocation coefficient (pJ per byte).
    pub buf_pj_per_byte: f64,
}

impl RouterEnergyModel {
    /// Coefficients calibrated to the paper's power anchors (see DESIGN.md):
    /// at 16B a 5×5 router costs `0.022·25·16 + 0.3 = 9.1 pJ/byte`, placing
    /// the baseline NoC at ≈1.5 W under the reference load so that the
    /// RF-I's 0.75 pJ/bit lands at the paper's relative overhead.
    pub fn paper_32nm() -> Self {
        Self { xbar_pj_per_byte_port2_width: 0.022, buf_pj_per_byte: 0.30 }
    }

    /// Energy in pJ per payload byte traversing a router with the given
    /// port configuration and link width.
    pub fn energy_per_byte_pj(&self, config: RouterConfig, width: LinkWidth) -> f64 {
        let w = width.bytes() as f64;
        self.xbar_pj_per_byte_port2_width
            * config.in_ports as f64
            * config.out_ports as f64
            * w
            + self.buf_pj_per_byte
    }
}

impl Default for RouterEnergyModel {
    fn default() -> Self {
        Self::paper_32nm()
    }
}

/// Router active-layer area model.
///
/// `A = K_xbar · in · out · w² + K_buf · in · w` (mm², `w` in bytes). The
/// two coefficients are the *exact* solution of Table 2's router-area
/// column:
///
/// * 100 standard 5-port routers at 16B → 30.21 mm²
/// * at 8B → 9.34 mm², at 4B → 3.23 mm²
/// * 50 routers upgraded to 6-in/6-out at 16B → 35.99 mm² total
///
/// which this model reproduces to within rounding.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterAreaModel {
    /// Crossbar area coefficient (mm² per port² per byte²).
    pub xbar_mm2_per_port2_byte2: f64,
    /// Buffer area coefficient (mm² per input port per byte).
    pub buf_mm2_per_port_byte: f64,
    /// Area of a VCT multicast tree table per router (mm²); only charged
    /// when the design enables VCT (≈5.4% of the 16B baseline NoC area,
    /// paper §5.2).
    pub vct_table_mm2: f64,
}

impl RouterAreaModel {
    /// Coefficients fitted exactly to Table 2 (see type docs).
    pub fn paper_32nm() -> Self {
        Self {
            xbar_mm2_per_port2_byte2: 3.6e-5,
            buf_mm2_per_port_byte: 8.95e-4,
            vct_table_mm2: 0.01636,
        }
    }

    /// Active-layer area in mm² of one router.
    pub fn area_mm2(&self, config: RouterConfig, width: LinkWidth) -> f64 {
        let w = width.bytes() as f64;
        self.xbar_mm2_per_port2_byte2 * config.in_ports as f64 * config.out_ports as f64 * w * w
            + self.buf_mm2_per_port_byte * config.in_ports as f64 * w
    }
}

impl Default for RouterAreaModel {
    fn default() -> Self {
        Self::paper_32nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_router_areas_reproduced() {
        let m = RouterAreaModel::paper_32nm();
        let std5 = RouterConfig::standard();
        // 100 standard routers
        let total16 = 100.0 * m.area_mm2(std5, LinkWidth::B16);
        let total8 = 100.0 * m.area_mm2(std5, LinkWidth::B8);
        let total4 = 100.0 * m.area_mm2(std5, LinkWidth::B4);
        assert!((total16 - 30.21).abs() < 0.15, "16B: {total16}");
        assert!((total8 - 9.34).abs() < 0.06, "8B: {total8}");
        assert!((total4 - 3.23).abs() < 0.03, "4B: {total4}");
        // 50 access points (6-in/6-out) + 50 standard at 16B → 35.99
        let total_ap = 50.0 * m.area_mm2(RouterConfig::rf_both(), LinkWidth::B16)
            + 50.0 * m.area_mm2(std5, LinkWidth::B16);
        assert!((total_ap - 35.99).abs() < 0.2, "50 APs: {total_ap}");
    }

    #[test]
    fn arch_specific_16b_area_close_to_table2() {
        // 16 Tx + 16 Rx routers, 68 standard, at 16B → Table 2 says 32.06.
        let m = RouterAreaModel::paper_32nm();
        let total = 16.0 * m.area_mm2(RouterConfig::rf_tx(), LinkWidth::B16)
            + 16.0 * m.area_mm2(RouterConfig::rf_rx(), LinkWidth::B16)
            + 68.0 * m.area_mm2(RouterConfig::standard(), LinkWidth::B16);
        assert!((total - 32.06).abs() < 0.4, "arch-specific: {total}");
    }

    #[test]
    fn per_byte_energy_scales_with_width() {
        // Paper anchors: halving link width roughly halves router power at
        // fixed byte demand (−48% at 8B), so per-byte energy must be close
        // to proportional to width with a small constant floor.
        let m = RouterEnergyModel::paper_32nm();
        let std5 = RouterConfig::standard();
        let e16 = m.energy_per_byte_pj(std5, LinkWidth::B16);
        let e8 = m.energy_per_byte_pj(std5, LinkWidth::B8);
        let e4 = m.energy_per_byte_pj(std5, LinkWidth::B4);
        let r8 = e8 / e16;
        let r4 = e4 / e16;
        assert!((0.48..0.58).contains(&r8), "8B/16B per-byte ratio {r8}");
        assert!((0.24..0.33).contains(&r4), "4B/16B per-byte ratio {r4}");
    }

    #[test]
    fn six_port_router_costs_more() {
        let m = RouterEnergyModel::paper_32nm();
        let e5 = m.energy_per_byte_pj(RouterConfig::standard(), LinkWidth::B16);
        let e6 = m.energy_per_byte_pj(RouterConfig::rf_both(), LinkWidth::B16);
        // 36/25 crossbar scaling dominates at full width
        assert!(e6 / e5 > 1.35 && e6 / e5 < 1.45, "ratio {}", e6 / e5);
    }

    #[test]
    fn six_port_penalty_shrinks_at_narrow_width() {
        // The paper's RF-router power overhead largely disappears on the
        // 4B mesh (Figure 8): the crossbar term shrinks with width while
        // the constant term does not.
        let m = RouterEnergyModel::paper_32nm();
        let penalty_16 = m.energy_per_byte_pj(RouterConfig::rf_both(), LinkWidth::B16)
            / m.energy_per_byte_pj(RouterConfig::standard(), LinkWidth::B16);
        let penalty_4 = m.energy_per_byte_pj(RouterConfig::rf_both(), LinkWidth::B4)
            / m.energy_per_byte_pj(RouterConfig::standard(), LinkWidth::B4);
        assert!(penalty_4 < penalty_16, "{penalty_4} vs {penalty_16}");
    }

    #[test]
    fn energy_positive_even_at_min_width() {
        let m = RouterEnergyModel::paper_32nm();
        assert!(m.energy_per_byte_pj(RouterConfig::standard(), LinkWidth::B4) > 0.0);
    }
}
