//! Repeated-wire link model (paper Figure 6, after CosiNoC and IPEM).

use crate::design::LinkWidth;
use crate::tech::TechParams;

/// Power and area of conventional router-to-router links.
///
/// A link of width `w` bytes is `8w` parallel wires of length `D` (the
/// router spacing), each with optimally sized and spaced repeaters. Derived
/// from [`TechParams`] via the Figure 6 equations.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    energy_j_per_bit_mm: f64,
    hop_length_mm: f64,
    repeaters_per_wire: usize,
    repeater_leak_w: f64,
    repeater_area_mm2: f64,
}

impl LinkModel {
    /// Builds the link model from technology parameters.
    pub fn new(tech: &TechParams) -> Self {
        Self {
            energy_j_per_bit_mm: tech.link_energy_j_per_bit_mm(),
            hop_length_mm: tech.hop_length_mm,
            repeaters_per_wire: tech.repeaters_per_wire(),
            repeater_leak_w: tech.repeater_leak_w(),
            repeater_area_mm2: tech.repeater_area_mm2(),
        }
    }

    /// Dynamic energy (pJ) to move one payload byte across one link.
    pub fn energy_per_byte_pj(&self) -> f64 {
        self.energy_j_per_bit_mm * self.hop_length_mm * 8.0 * 1e12
    }

    /// Leakage power (W) of one directed link of the given width.
    pub fn leakage_w(&self, width: LinkWidth) -> f64 {
        self.repeater_leak_w * self.repeaters_per_wire as f64 * width.bits() as f64
    }

    /// Active-layer (repeater) area of one directed link (mm²).
    ///
    /// The paper notes that wire area "is comprised of the signal repeaters
    /// which are placed on the active layer, and is halved each time the
    /// link bandwidth ... is halved" (§5.1.2) — which this model satisfies
    /// by construction (area ∝ wire count ∝ width).
    pub fn area_mm2(&self, width: LinkWidth) -> f64 {
        self.repeater_area_mm2 * self.repeaters_per_wire as f64 * width.bits() as f64
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::new(&TechParams::paper_32nm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_halves_with_width() {
        let m = LinkModel::default();
        let a16 = m.area_mm2(LinkWidth::B16);
        let a8 = m.area_mm2(LinkWidth::B8);
        let a4 = m.area_mm2(LinkWidth::B4);
        assert!((a16 / a8 - 2.0).abs() < 1e-9);
        assert!((a8 / a4 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn table2_link_area_scale() {
        // Table 2: 0.08 mm² total link area at 16B over the whole mesh
        // (360 directed links).
        let m = LinkModel::default();
        let total = 360.0 * m.area_mm2(LinkWidth::B16);
        assert!((total - 0.08).abs() < 0.025, "total link area {total}");
    }

    #[test]
    fn per_byte_energy_is_small_vs_router() {
        // Links must stay a minor share so the paper's width-scaling power
        // anchors hold (router crossbars dominate; see DESIGN.md).
        let m = LinkModel::default();
        let e = m.energy_per_byte_pj();
        assert!(e > 0.01 && e < 0.3, "link energy {e} pJ/byte-hop");
    }

    #[test]
    fn leakage_positive_and_small() {
        let m = LinkModel::default();
        let total = 360.0 * m.leakage_w(LinkWidth::B16);
        assert!(total > 0.0 && total < 0.1, "link leakage {total} W");
    }
}
