//! Property-based tests for the power/area models.

use proptest::prelude::*;
use rfnoc_power::{
    ActivityCounters, DesignSpec, LinkWidth, NocPowerModel, RouterConfig,
};

fn width_of(idx: usize) -> LinkWidth {
    LinkWidth::all()[idx % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Power is monotone in activity: more bytes anywhere never reduces
    /// total power.
    #[test]
    fn power_monotone_in_activity(
        base in proptest::collection::vec(0u64..10_000, 16),
        extra_router in 0usize..16,
        extra in 1u64..10_000,
        width_idx in 0usize..3,
    ) {
        let model = NocPowerModel::paper_32nm();
        let design = DesignSpec::mesh_baseline(16, 48, width_of(width_idx));
        let mut a = ActivityCounters::new(16);
        a.cycles = 1_000;
        a.router_bytes = base;
        a.link_byte_hops = 100;
        let p1 = model.power(&design, &a).total_w();
        a.router_bytes[extra_router] += extra;
        let p2 = model.power(&design, &a).total_w();
        prop_assert!(p2 > p1);
    }

    /// At a fixed byte demand, narrower links never cost more power.
    #[test]
    fn narrower_is_never_more_power(
        bytes in 1_000u64..1_000_000,
        hops in 1u64..10,
    ) {
        let model = NocPowerModel::paper_32nm();
        let mut last = f64::INFINITY;
        for width in LinkWidth::all() {
            let design = DesignSpec::mesh_baseline(100, 360, width);
            let mut a = ActivityCounters::new(100);
            a.cycles = 1_000_000;
            for r in 0..100 {
                a.router_bytes[r] = bytes;
            }
            a.link_byte_hops = bytes * hops;
            let p = model.power(&design, &a).total_w();
            prop_assert!(p <= last, "width {width} costs more than wider link");
            last = p;
        }
    }

    /// Router area is monotone in port count and width.
    #[test]
    fn area_monotone(in_ports in 5u32..7, out_ports in 5u32..7, width_idx in 0usize..2) {
        let model = NocPowerModel::paper_32nm();
        let smaller = RouterConfig { in_ports, out_ports };
        let bigger = RouterConfig { in_ports: in_ports + 1, out_ports };
        let w = width_of(width_idx);
        prop_assert!(
            model.router_area.area_mm2(bigger, w) > model.router_area.area_mm2(smaller, w)
        );
        // wider datapath costs more area too (B4 < B8 < B16 ordering)
        prop_assert!(
            model.router_area.area_mm2(smaller, LinkWidth::B16)
                > model.router_area.area_mm2(smaller, LinkWidth::B8)
        );
    }

    /// Power breakdown components are individually non-negative and sum to
    /// the total.
    #[test]
    fn breakdown_sums(
        bytes in 0u64..100_000,
        rf_bytes in 0u64..100_000,
        rf_gbps in 0.0f64..20_000.0,
    ) {
        let model = NocPowerModel::paper_32nm();
        let mut design = DesignSpec::mesh_baseline(16, 48, LinkWidth::B16);
        design.rf_provisioned_gbps = rf_gbps;
        let mut a = ActivityCounters::new(16);
        a.cycles = 10_000;
        a.router_bytes[3] = bytes;
        a.rf_bytes = rf_bytes;
        let p = model.power(&design, &a);
        for part in [
            p.router_dynamic_w,
            p.router_leakage_w,
            p.link_dynamic_w,
            p.link_leakage_w,
            p.rf_dynamic_w,
            p.rf_static_w,
        ] {
            prop_assert!(part >= 0.0);
        }
        let sum = p.router_dynamic_w + p.router_leakage_w + p.link_dynamic_w
            + p.link_leakage_w + p.rf_dynamic_w + p.rf_static_w;
        prop_assert!((sum - p.total_w()).abs() < 1e-12);
    }

    /// Area scales linearly with the number of identical routers.
    #[test]
    fn area_linear_in_routers(count in 1usize..200) {
        let model = NocPowerModel::paper_32nm();
        let one = model
            .area(&DesignSpec::mesh_baseline(1, 0, LinkWidth::B16))
            .router_mm2;
        let many = model
            .area(&DesignSpec::mesh_baseline(count, 0, LinkWidth::B16))
            .router_mm2;
        prop_assert!((many - one * count as f64).abs() < 1e-9);
    }
}
