//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this implementation. It provides [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers (`gen`,
//! `gen_range`, `gen_bool`) backed by a xoshiro256++ generator. The
//! streams are deterministic for a given seed but do **not** match the
//! upstream `rand` crate's streams.

/// Low-level generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
    }
}

/// Seedable generator interface (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the "standard" distribution.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u16 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl StandardSample for u8 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as StandardSample>::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; streams differ from upstream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
            let i = rng.gen_range(2u32..=5);
            assert!((2..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
