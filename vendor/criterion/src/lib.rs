//! Offline stand-in for the subset of the `criterion` crate this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `criterion` to this implementation. It runs each benchmark a
//! small, fixed number of iterations and prints mean wall-clock times —
//! good enough for smoke-testing and rough comparisons, with none of
//! criterion's statistics. Under `cargo test` (which passes `--test` to
//! `harness = false` bench binaries) every benchmark runs exactly once.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimiser from deleting a
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id for function `name` at `parameter`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        Self { name: format!("{name}/{parameter}") }
    }

    /// An id carrying only a parameter (criterion's `from_parameter`).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the stub
    /// always runs a fixed iteration budget).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.criterion.run_one(&format!("{}/{}", self.name, id.name), &mut f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        self.criterion
            .run_one(&format!("{}/{}", self.name, id.name), &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness = false bench binaries with `--test`;
        // `cargo bench` passes `--bench`. Keep test runs to one iteration.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { iterations: if test_mode { 1 } else { 10 } }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, &mut f);
        self
    }

    fn run_one(&self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher { iterations: self.iterations, elapsed: Duration::ZERO };
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_secs_f64() / self.iterations.max(1) as f64;
        println!("bench {name}: {:.3} ms/iter ({} iters)", per_iter * 1e3, self.iterations);
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion { iterations: 3 };
        c.bench_function("count_calls", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { iterations: 1 };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_function(BenchmarkId::new("param", 4), |b| b.iter(|| 2 * 2));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| x * x)
        });
        group.finish();
    }
}
