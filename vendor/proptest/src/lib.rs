//! Offline stand-in for the subset of the `proptest` crate this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `proptest` to this implementation. It supports the
//! [`proptest!`] macro over named `ident in strategy` arguments, range
//! strategies for the primitive numeric types, `any::<T>()`, tuple
//! strategies, [`collection::vec`] / [`collection::hash_set`], and the
//! `prop_assert*` / `prop_assume!` macros. Failing cases report their
//! inputs but are **not shrunk** — this is a test runner, not a full
//! property-testing engine.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed with the given message.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; the case is retried.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        Self::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(msg) => write!(f, "{msg}"),
            Self::Reject => write!(f, "input rejected by prop_assume!"),
        }
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-case generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// A generator for case `case` of the property named `name` —
    /// deterministic across runs so failures are reproducible.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E));

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Sizes accepted by the collection strategies: a fixed length or a
    /// half-open range of lengths.
    pub trait SizeRange: Clone {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
        /// Largest length this size can produce.
        fn max_len(&self) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
        fn max_len(&self) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
        fn max_len(&self) -> usize {
            self.end.saturating_sub(1)
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// Strategy generating `HashSet`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S, L> Strategy for HashSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        L: SizeRange,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = HashSet::with_capacity(target);
            // A narrow element domain may not contain `target` distinct
            // values; bound the attempts like upstream proptest does.
            let mut attempts = 0;
            while out.len() < target && attempts < target * 16 + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// A strategy for `HashSet`s with target sizes drawn from `size`.
    pub fn hash_set<S, L>(element: S, size: L) -> HashSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        L: SizeRange,
    {
        HashSetStrategy { element, size }
    }
}

impl<T: Strategy> Strategy for Vec<T> {
    type Value = Vec<T::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut passed: u32 = 0;
                let mut attempt: u32 = 0;
                while passed < config.cases {
                    assert!(
                        attempt < config.cases.saturating_mul(20).max(1000),
                        "proptest {}: too many rejected cases ({} rejections)",
                        stringify!($name),
                        attempt - passed,
                    );
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        attempt,
                    );
                    attempt += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($("\n    ", stringify!($arg), " = {:?}",)+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            Ok(())
                        })();
                    match __result {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}: {}\n  inputs:{}",
                                stringify!($name),
                                attempt - 1,
                                msg,
                                __inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left,
        );
    }};
}

/// Rejects the current inputs, retrying the case with fresh ones.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, f in 0.5f64..2.0, b in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
            let _ = b;
        }

        #[test]
        fn vectors_respect_sizes(
            v in collection::vec((0usize..10, 0usize..10), 0..6),
            fixed in collection::vec(any::<bool>(), 4usize),
            set in collection::hash_set(0usize..100, 1..8),
        ) {
            prop_assert!(v.len() < 6);
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!(!set.is_empty() && set.len() < 8);
        }

        #[test]
        fn assume_retries(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_generation() {
        let strat = collection::vec(0usize..100, 1..10);
        let a = strat.generate(&mut TestRng::for_case("det", 3));
        let b = strat.generate(&mut TestRng::for_case("det", 3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    #[allow(unnameable_test_items)]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
